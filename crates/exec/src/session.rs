//! Multi-query session driver: the virtual-warehouse front door.
//!
//! A [`Session`] owns one shared [`MorselPool`] and runs batches of
//! compiled queries concurrently on it. Each query gets its own driver
//! (one scoped thread), its own [`snowprune_storage::IoStats`] handle, and
//! its own injector
//! lane, so:
//!
//! * N concurrent queries share `ExecConfig::scan_threads` scan workers —
//!   not N×threads as the old per-scan scoped-thread model did;
//! * per-query I/O and prune counters are tallied race-free (counters are
//!   per-executor atomics, never shared across queries);
//! * round-robin lane scheduling keeps a long scan from starving short
//!   queries submitted in the same burst.
//!
//! With `ExecConfig::predicate_cache` on, the session additionally owns
//! the shared (mutex-guarded) §8.2 [`PredicateCache`]: every per-query
//! executor consults it at admission, and DML routed through the session's
//! [`Session::insert_rows`] / [`Session::delete_rows`] /
//! [`Session::update_rows`] wrappers (or raw results via
//! [`Session::on_dml`]) keeps the cached entries consistent with the
//! paper's correctness rules.

use parking_lot::Mutex;
use snowprune_cache::{CacheStats, DmlKind, PredicateCache};
use snowprune_plan::Plan;
use snowprune_storage::{Catalog, DmlResult};
use snowprune_types::{Error, Result, Value};
use std::sync::Arc;

use crate::config::ExecConfig;
use crate::exec::{Executor, QueryOutput};
use crate::pool::MorselPool;

/// A shared-pool execution session for a burst of concurrent queries.
pub struct Session {
    catalog: Catalog,
    cfg: ExecConfig,
    pool: Arc<MorselPool>,
    /// §8.2 predicate cache, shared by every query this session runs.
    cache: Option<Arc<Mutex<PredicateCache>>>,
}

impl Session {
    /// Create a session with its own pool of `cfg.scan_threads` workers.
    /// Unlike [`Executor::new`], a session always routes scans through the
    /// pool — even at `scan_threads = 1` — so single-worker runs exercise
    /// the same code path the concurrency suites stress.
    pub fn new(catalog: Catalog, cfg: ExecConfig) -> Self {
        let pool = MorselPool::new(cfg.scan_threads.max(1));
        let cache = crate::exec::new_cache(&cfg);
        Session {
            catalog,
            cfg,
            pool,
            cache,
        }
    }

    /// A session on an existing pool (e.g. several sessions sharing one
    /// warehouse).
    pub fn with_pool(catalog: Catalog, cfg: ExecConfig, pool: Arc<MorselPool>) -> Self {
        let cache = crate::exec::new_cache(&cfg);
        Session {
            catalog,
            cfg,
            pool,
            cache,
        }
    }

    /// The shared worker pool every query of this session draws from.
    pub fn pool(&self) -> &Arc<MorselPool> {
        &self.pool
    }

    /// The session's configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// The catalog this session serves (used by the SQL front-end to
    /// resolve table and column names at bind time).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session-shared predicate cache, when enabled.
    pub fn cache(&self) -> Option<&Arc<Mutex<PredicateCache>>> {
        self.cache.as_ref()
    }

    /// Counters of the session's predicate cache (defaults when disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(|c| c.lock().stats())
            .unwrap_or_default()
    }

    /// A fresh executor bound to this session's pool and shared predicate
    /// cache, with its own per-query I/O counters.
    pub fn executor(&self) -> Executor {
        Executor::with_pool(
            self.catalog.clone(),
            self.cfg.clone(),
            Arc::clone(&self.pool),
        )
        .with_shared_cache(self.cache.clone())
    }

    /// Like [`Session::executor`], but with this query's prefetch depth
    /// overridden — the admission layer's adaptive-depth hook.
    pub(crate) fn executor_with_prefetch_depth(&self, depth: usize) -> Executor {
        let mut cfg = self.cfg.clone();
        cfg.prefetch_depth = depth.max(1);
        Executor::with_pool(self.catalog.clone(), cfg, Arc::clone(&self.pool))
            .with_shared_cache(self.cache.clone())
    }

    // ---- DML ------------------------------------------------------------

    /// Feed a DML statement's result into the predicate cache (no-op when
    /// the cache is disabled). The convenience wrappers below call this
    /// automatically; use it directly when applying DML to catalog tables
    /// by hand.
    pub fn on_dml(&self, table: &str, kind: &DmlKind, result: &DmlResult) {
        if let Some(cache) = &self.cache {
            cache.lock().on_dml(table, kind, result);
        }
    }

    /// INSERT rows into a catalog table, keeping the predicate cache
    /// consistent (new partitions are appended to affected entries).
    pub fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<DmlResult> {
        let handle = self.catalog.get(table)?;
        let res = handle.write().insert_rows(rows);
        self.on_dml(table, &DmlKind::Insert, &res);
        Ok(res)
    }

    /// DELETE rows matching `pred`, keeping the predicate cache consistent
    /// (top-k entries for the table are invalidated).
    pub fn delete_rows(&self, table: &str, pred: impl Fn(&[Value]) -> bool) -> Result<DmlResult> {
        let handle = self.catalog.get(table)?;
        let res = handle.write().delete_rows(pred);
        self.on_dml(table, &DmlKind::Delete, &res);
        Ok(res)
    }

    /// UPDATE rows via `f`, keeping the predicate cache consistent. The
    /// changed-column set is *measured* by the storage layer
    /// (`Table::update_rows_tracked`), not declared by the caller, so the
    /// cache's ordering/predicate-column rules cannot be bypassed by an
    /// under-declared update.
    pub fn update_rows(
        &self,
        table: &str,
        f: impl Fn(&[Value]) -> Vec<Value>,
    ) -> Result<DmlResult> {
        let handle = self.catalog.get(table)?;
        let (res, changed_columns) = handle.write().update_rows_tracked(f);
        self.on_dml(table, &DmlKind::Update(changed_columns), &res);
        Ok(res)
    }

    /// Run one query on the shared pool.
    pub fn run(&self, plan: &Plan) -> Result<QueryOutput> {
        self.executor().run(plan)
    }

    /// Run an admission-controlled multi-tenant burst on the shared pool.
    ///
    /// Unlike [`Session::run_batch`] — which spawns one driver thread per
    /// plan, an unbounded fan-in — this routes the burst through
    /// [`crate::admission`]: at most `scan_threads` driver threads, a
    /// windowed per-tenant FIFO capped at
    /// [`ExecConfig::tenant_max_concurrent`] running queries, explicit
    /// [`crate::Admission::Rejected`] once a tenant exceeds its cap plus
    /// [`ExecConfig::admission_queue_cap`] queued arrivals, and (with
    /// [`ExecConfig::adaptive_prefetch`]) per-tenant prefetch depth
    /// steered by the observed unhidden-I/O/CPU balance. Returns one
    /// outcome per arrival in arrival order plus deterministic per-tenant
    /// fairness metrics ([`crate::TenantStats`]).
    pub fn run_admitted(&self, arrivals: &[(crate::TenantId, Plan)]) -> crate::AdmissionRun {
        crate::admission::run_admitted(self, arrivals)
    }

    /// Run a batch of queries concurrently on the shared pool, returning
    /// per-query outputs in input order. Each output carries that query's
    /// own `IoStats` delta and pruning report.
    pub fn run_batch(&self, plans: &[Plan]) -> Vec<Result<QueryOutput>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .map(|plan| scope.spawn(move || self.executor().run(plan)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::Invalid("query driver panicked".into())))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_plan::PlanBuilder;
    use snowprune_storage::{Field, Layout, Schema, TableBuilder};
    use snowprune_types::{ScalarType, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", ScalarType::Int),
            Field::new("v", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(25)
            .layout(Layout::ClusterBy(vec!["k".into()]));
        for i in 0..1000i64 {
            b.push_row(vec![Value::Int(i), Value::Int((i * 37) % 500)]);
        }
        let c = Catalog::new();
        c.register(b.build());
        c
    }

    fn schema_of(c: &Catalog) -> Schema {
        c.get("t").unwrap().read().schema().clone()
    }

    #[test]
    fn admitted_burst_matches_oracle_and_rejects_overflow() {
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let plans: Vec<Plan> = (0..6)
            .map(|i| {
                PlanBuilder::scan("t", schema.clone())
                    .filter(col("k").between(lit(i * 100), lit(i * 100 + 250)))
                    .build()
            })
            .collect();
        let cfg = ExecConfig::default()
            .with_scan_threads(2)
            .with_tenant_max_concurrent(1)
            .with_admission_queue_cap(1);
        let session = Session::new(catalog.clone(), cfg);
        // Tenant 0 sends four arrivals against a window of 1 running +
        // 1 queued; the last two must be refused. Tenant 1's window is
        // independent.
        let arrivals: Vec<(crate::TenantId, Plan)> = [0u64, 0, 1, 0, 0, 1]
            .into_iter()
            .zip(plans.iter().cloned())
            .collect();
        let run = session.run_admitted(&arrivals);
        let rejected: Vec<usize> = run
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_rejected())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rejected, vec![3, 4], "burst admission is order-decided");
        let sort = |rs: &crate::RowSet| {
            let mut rows = rs.rows.clone();
            rows.sort_by(|a, b| a[0].total_ord_cmp(&b[0]));
            rows
        };
        for (i, (_, plan)) in arrivals.iter().enumerate() {
            let Some(out) = run.outcomes[i].output() else {
                continue;
            };
            let solo = Executor::new(catalog.clone(), ExecConfig::default())
                .run(plan)
                .unwrap();
            assert_eq!(sort(&out.rows), sort(&solo.rows), "arrival {i}");
        }
        let t0 = run.tenant(0).unwrap();
        assert_eq!((t0.admitted, t0.rejected), (2, 2));
        let t1 = run.tenant(1).unwrap();
        assert_eq!((t1.admitted, t1.rejected), (2, 0));
        assert!(t0.morsels_run > 0);
    }

    #[test]
    fn adaptive_depth_is_bounded_and_stats_are_reproducible() {
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let arrivals: Vec<(crate::TenantId, Plan)> = (0..12i64)
            .map(|i| {
                let plan = PlanBuilder::scan("t", schema.clone())
                    .filter(col("k").between(lit((i % 4) * 200), lit((i % 4) * 200 + 300)))
                    .build();
                (i as u64 % 3, plan)
            })
            .collect();
        let mut cfg = ExecConfig::default()
            .with_scan_threads(3)
            .with_tenant_max_concurrent(2)
            .with_adaptive_prefetch(true)
            .with_prefetch_max_depth(4);
        // An I/O-heavy cost model so the update rule has a gradient to
        // climb (the depths must still stay inside [1, max]).
        cfg.io_cost = snowprune_storage::IoCostModel {
            latency_ns_per_request: 1_000_000,
            throughput_bytes_per_sec: 100_000_000,
            metadata_ns_per_read: 0,
            eval_ns_per_row: 100,
        };
        let run_once = || {
            let session = Session::new(catalog.clone(), cfg.clone());
            let run = session.run_admitted(&arrivals);
            for t in &run.tenants {
                assert!(
                    t.depth_hist.iter().all(|&d| (1..=4).contains(&d)),
                    "depth left [1, max]: {:?}",
                    t.depth_hist
                );
            }
            run.tenants.clone()
        };
        let first = run_once();
        // Per-tenant stats come off virtual clocks, never host timing.
        for _ in 0..5 {
            assert_eq!(run_once(), first, "TenantStats must be bit-identical");
        }
        // The I/O-bound mix actually drives some tenant's depth upward.
        assert!(
            first.iter().any(|t| t
                .depth_hist
                .iter()
                .any(|&d| d > ExecConfig::default().prefetch_depth)),
            "adaptive depth never moved: {first:?}"
        );
    }

    #[test]
    fn batch_results_match_individual_runs() {
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let plans: Vec<Plan> = (0..8)
            .map(|i| {
                PlanBuilder::scan("t", schema.clone())
                    .filter(col("k").between(lit(i * 100), lit(i * 100 + 250)))
                    .build()
            })
            .collect();
        let session = Session::new(catalog.clone(), ExecConfig::default().with_scan_threads(3));
        let batch = session.run_batch(&plans);
        for (plan, out) in plans.iter().zip(&batch) {
            let out = out.as_ref().unwrap();
            let solo = Executor::new(catalog.clone(), ExecConfig::default())
                .run(plan)
                .unwrap();
            let sort = |rs: &crate::RowSet| {
                let mut rows = rs.rows.clone();
                rows.sort_by(|a, b| a[0].total_ord_cmp(&b[0]));
                rows
            };
            assert_eq!(sort(&out.rows), sort(&solo.rows));
            // Per-query I/O deltas are isolated even though all eight
            // queries interleaved on three workers.
            assert_eq!(out.io.partitions_loaded, solo.io.partitions_loaded);
        }
    }

    #[test]
    fn prefetch_counters_thread_through_session_outputs() {
        // The new pipeline counters surface per query: the IoSnapshot delta
        // carries overlap/wall accounting and the report carries the
        // pipeline invariant, for every query of a concurrent batch.
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let plans: Vec<Plan> = (0..6)
            .map(|i| {
                PlanBuilder::scan("t", schema.clone())
                    .filter(col("k").between(lit(i * 120), lit(i * 120 + 300)))
                    .build()
            })
            .collect();
        let mut cfg = ExecConfig::default()
            .with_scan_threads(3)
            .with_prefetch_depth(4);
        // Zero metadata cost so the wall identity below covers exactly the
        // pipeline's load + evaluate time.
        cfg.io_cost.metadata_ns_per_read = 0;
        let session = Session::new(catalog, cfg);
        for out in session.run_batch(&plans) {
            let out = out.unwrap();
            let s = &out.report.scan_stats;
            assert_eq!(
                s.considered,
                s.loaded + s.skipped_by_boundary + s.cancelled_in_flight(),
                "pipeline invariant"
            );
            assert_eq!(out.io.partitions_loaded, s.loaded);
            assert!(out.io.io_overlapped_ns > 0, "depth 4 must overlap I/O");
            assert_eq!(
                out.io.simulated_wall_ns,
                out.io.simulated_io_ns + out.io.simulated_cpu_ns - out.io.io_overlapped_ns
            );
        }
    }

    #[test]
    fn single_worker_session_still_uses_pool_path() {
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let plan = PlanBuilder::scan("t", schema)
            .filter(col("v").lt(lit(100i64)))
            .build();
        let session = Session::new(catalog, ExecConfig::default().with_scan_threads(1));
        assert_eq!(session.pool().worker_count(), 1);
        let out = session.run(&plan).unwrap();
        assert_eq!(out.rows.len(), 200);
    }

    // ---- predicate cache (§8.2) -----------------------------------------

    use crate::exec::CacheOutcome;

    fn cached_session(threads: usize) -> Session {
        Session::new(
            catalog(),
            ExecConfig::default()
                .with_scan_threads(threads)
                .with_predicate_cache(true),
        )
    }

    #[test]
    fn warm_topk_replay_is_byte_identical_and_restricted() {
        for threads in [1usize, 4] {
            let session = cached_session(threads);
            let schema = session.catalog.get("t").unwrap().read().schema().clone();
            let plan = PlanBuilder::scan("t", schema)
                .filter(col("v").ge(lit(250i64)))
                .order_by("k", true)
                .limit(7)
                .build();
            let cold = session.run(&plan).unwrap();
            assert_eq!(cold.report.cache, CacheOutcome::Miss);
            let warm = session.run(&plan).unwrap();
            assert_eq!(warm.report.cache, CacheOutcome::Hit);
            assert_eq!(warm.rows.rows, cold.rows.rows, "threads {threads}");
            assert!(warm.io.partitions_loaded <= cold.io.partitions_loaded);
            assert!(warm.report.pruned_by_cache > 0, "scan set not restricted");
            let stats = session.cache_stats();
            assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        }
    }

    #[test]
    fn warm_filter_replay_is_byte_identical() {
        let session = cached_session(3);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        // Predicate on the unclustered column: zone maps cannot prune it,
        // so the cold run loads everything and the warm replay only the
        // partitions that actually matched.
        let plan = PlanBuilder::scan("t", schema)
            .filter(col("v").eq(lit(123i64)))
            .build();
        let cold = session.run(&plan).unwrap();
        let warm = session.run(&plan).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        assert_eq!(warm.rows.rows, cold.rows.rows);
        assert!(
            warm.io.partitions_loaded < cold.io.partitions_loaded,
            "warm {} vs cold {}",
            warm.io.partitions_loaded,
            cold.io.partitions_loaded
        );
    }

    #[test]
    fn session_dml_keeps_warm_replays_correct() {
        let session = cached_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        let plan = PlanBuilder::scan("t", schema)
            .order_by("k", true)
            .limit(3)
            .build();
        let cold = session.run(&plan).unwrap();
        // INSERT a new global maximum: the entry survives (appended
        // partitions) and the warm hit must surface the new row.
        session
            .insert_rows("t", vec![vec![Value::Int(5_000), Value::Int(0)]])
            .unwrap();
        let warm = session.run(&plan).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        assert_eq!(warm.rows.rows[0][0], Value::Int(5_000));
        // DELETE invalidates the top-k entry; the next run re-records.
        session
            .delete_rows("t", |row| row[0] == Value::Int(5_000))
            .unwrap();
        let after = session.run(&plan).unwrap();
        assert_eq!(after.report.cache, CacheOutcome::Miss);
        assert_eq!(after.rows.rows, cold.rows.rows);
        assert!(session.cache_stats().invalidations >= 1);
    }

    #[test]
    fn untracked_dml_is_rejected_as_stale_not_served() {
        let session = cached_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        let plan = PlanBuilder::scan("t", schema)
            .order_by("k", true)
            .limit(3)
            .build();
        session.run(&plan).unwrap();
        // Mutate the table behind the session's back (no on_dml): the
        // version check must reject the entry instead of replaying it.
        let handle = session.catalog.get("t").unwrap();
        handle
            .write()
            .insert_rows(vec![vec![Value::Int(9_999), Value::Int(0)]]);
        let out = session.run(&plan).unwrap();
        assert_eq!(out.report.cache, CacheOutcome::Miss);
        assert_eq!(out.rows.rows[0][0], Value::Int(9_999));
        assert_eq!(session.cache_stats().stale_rejections, 1);
    }

    // ---- shape-mode fingerprints (§8.2 extension) ------------------------

    use crate::config::PredicateCacheMode;

    fn shape_session(threads: usize) -> Session {
        Session::new(
            catalog(),
            ExecConfig::default()
                .with_scan_threads(threads)
                .with_predicate_cache(true)
                .with_predicate_cache_mode(PredicateCacheMode::Shape),
        )
    }

    #[test]
    fn shape_mode_serves_narrowed_filter_range() {
        let session = shape_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        let filt = |lo: i64, hi: i64| {
            PlanBuilder::scan("t", schema.clone())
                .filter(col("v").between(lit(lo), lit(hi)))
                .build()
        };
        // Cold run on the wide range records a shaped entry.
        let cold = session.run(&filt(100, 300)).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        // A strictly narrower range is a different exact fingerprint but a
        // subsumed shape: served as a ShapeHit, byte-identical to a cold
        // no-pruning oracle, never loading more than the wide cold run.
        let narrow = filt(150, 250);
        let warm = session.run(&narrow).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::ShapeHit);
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&narrow)
            .unwrap();
        let sort = |rs: &crate::RowSet| {
            let mut rows = rs.rows.clone();
            rows.sort_by(|a, b| a[0].total_ord_cmp(&b[0]));
            rows
        };
        assert_eq!(sort(&warm.rows), sort(&oracle.rows));
        assert!(warm.io.partitions_loaded <= cold.io.partitions_loaded);
        let stats = session.cache_stats();
        assert_eq!(stats.shape_hits, 1);
        assert_eq!(stats.hits, 0, "no exact fingerprint matched");
        // The widening direction must NOT be served by subsumption.
        let wide = session.run(&filt(50, 350)).unwrap();
        assert_eq!(wide.report.cache, CacheOutcome::Miss);
        assert!(session.cache_stats().subsumption_rejections >= 1);
    }

    #[test]
    fn shape_mode_serves_smaller_k_topk() {
        let session = shape_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        let topk = |k: u64| {
            PlanBuilder::scan("t", schema.clone())
                .filter(col("v").ge(lit(250i64)))
                .order_by("k", true)
                .limit(k)
                .build()
        };
        let cold = session.run(&topk(9)).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        // Same predicate, smaller k: the recorded survivors + tie log
        // cover the smaller top-k, so the replay is exact.
        let warm = session.run(&topk(4)).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::ShapeHit);
        assert_eq!(warm.rows.rows, cold.rows.rows[..4].to_vec());
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&topk(4))
            .unwrap();
        assert_eq!(warm.rows.rows, oracle.rows.rows);
        // A larger k cannot be served; it records its own entry.
        let bigger = session.run(&topk(20)).unwrap();
        assert_eq!(bigger.report.cache, CacheOutcome::Miss);
        // A narrowed predicate cannot be served by a top-k entry either
        // (equal ranges required), even at a smaller k.
        let narrowed = PlanBuilder::scan("t", schema.clone())
            .filter(col("v").ge(lit(300i64)))
            .order_by("k", true)
            .limit(4)
            .build();
        let out = session.run(&narrowed).unwrap();
        assert_eq!(out.report.cache, CacheOutcome::Miss);
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&narrowed)
            .unwrap();
        assert_eq!(out.rows.rows, oracle.rows.rows);
    }

    #[test]
    fn shape_mode_dml_invalidation_still_applies_to_shape_hits() {
        let session = shape_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        let topk = |k: u64| {
            PlanBuilder::scan("t", schema.clone())
                .order_by("k", true)
                .limit(k)
                .build()
        };
        session.run(&topk(8)).unwrap();
        // INSERT keeps the entry: the smaller-k shape hit must surface the
        // newly inserted global maximum from an appended partition.
        session
            .insert_rows("t", vec![vec![Value::Int(7_000), Value::Int(0)]])
            .unwrap();
        let warm = session.run(&topk(3)).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::ShapeHit);
        assert_eq!(warm.rows.rows[0][0], Value::Int(7_000));
        // DELETE invalidates the shape-serving top-k entry: the next
        // smaller-k query misses instead of replaying a stale superset.
        session
            .delete_rows("t", |row| row[0] == Value::Int(7_000))
            .unwrap();
        let after = session.run(&topk(3)).unwrap();
        assert_eq!(after.report.cache, CacheOutcome::Miss);
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&topk(3))
            .unwrap();
        assert_eq!(after.rows.rows, oracle.rows.rows);
    }

    #[test]
    fn exact_mode_never_reports_shape_hits() {
        // The default (exact) mode must be byte-for-byte the old behavior:
        // a narrowed replay misses and records its own entry.
        let session = cached_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        let filt = |lo: i64| {
            PlanBuilder::scan("t", schema.clone())
                .filter(col("v").ge(lit(lo)))
                .build()
        };
        session.run(&filt(200)).unwrap();
        let narrowed = session.run(&filt(260)).unwrap();
        assert_eq!(narrowed.report.cache, CacheOutcome::Miss);
        let stats = session.cache_stats();
        assert_eq!((stats.shape_hits, stats.subsumption_rejections), (0, 0));
    }

    #[test]
    fn untracked_dml_followed_by_tracked_dml_does_not_resync_entry() {
        // Regression: an untracked mutation (no on_dml) used to be masked
        // by a subsequent *tracked* DML stamping the entry with the live
        // version — the warm replay then silently missed the untracked
        // statement's partitions. The entry must be dropped instead.
        let session = cached_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        let plan = PlanBuilder::scan("t", schema)
            .order_by("k", true)
            .limit(3)
            .build();
        session.run(&plan).unwrap();
        // Untracked: a new global maximum inserted behind the session's
        // back (version bumps without on_dml).
        let handle = session.catalog.get("t").unwrap();
        handle
            .write()
            .insert_rows(vec![vec![Value::Int(8_888), Value::Int(0)]]);
        // Tracked: a harmless insert routed through the session. This used
        // to resynchronize the stale entry's version.
        session
            .insert_rows("t", vec![vec![Value::Int(-1), Value::Int(0)]])
            .unwrap();
        let out = session.run(&plan).unwrap();
        assert_eq!(out.report.cache, CacheOutcome::Miss, "stale entry served");
        assert_eq!(out.rows.rows[0][0], Value::Int(8_888));
        assert_eq!(session.cache_stats().stale_rejections, 1);
    }

    // ---- batch-native join/agg shapes in the cache ----------------------

    use snowprune_plan::{AggFunc, JoinType};

    /// dim(dk, name) × fact(k, dim_k, score): 1 000 fact rows in 20
    /// natural-order partitions, unique pseudo-random scores, every
    /// `dim_k` present in the 2-partition dim table.
    fn star_catalog() -> Catalog {
        let dim_schema = Schema::new(vec![
            Field::new("dk", ScalarType::Int),
            Field::new("name", ScalarType::Str),
        ]);
        let mut d = TableBuilder::new("dim", dim_schema).target_rows_per_partition(8);
        for i in 0..16i64 {
            d.push_row(vec![Value::Int(i), Value::Str(format!("d{i}"))]);
        }
        let fact_schema = Schema::new(vec![
            Field::new("k", ScalarType::Int),
            Field::new("dim_k", ScalarType::Int),
            Field::new("score", ScalarType::Int),
            Field::new("tag", ScalarType::Int),
        ]);
        let mut f = TableBuilder::new("fact", fact_schema).target_rows_per_partition(50);
        for i in 0..1_000i64 {
            f.push_row(vec![
                Value::Int(i),
                Value::Int(i % 16),
                Value::Int((i * 7919) % 1_000_003),
                // Unclustered: every partition's [min, max] straddles most
                // tag values, so zone maps cannot prune a tag predicate.
                Value::Int((i * 37) % 500),
            ]);
        }
        let c = Catalog::new();
        c.register(d.build());
        c.register(f.build());
        c
    }

    fn star_session(threads: usize) -> Session {
        Session::new(
            star_catalog(),
            ExecConfig::default()
                .with_scan_threads(threads)
                .with_predicate_cache(true),
        )
    }

    fn star_schema(session: &Session, table: &str) -> Schema {
        session.catalog.get(table).unwrap().read().schema().clone()
    }

    /// Top-5 fact rows by score, joined through dim (Figure 7b shape:
    /// the ORDER BY column comes from the probe side).
    fn topk_over_join(session: &Session, k: u64) -> Plan {
        let dim = star_schema(session, "dim");
        let fact = star_schema(session, "fact");
        PlanBuilder::scan("dim", dim)
            .join(
                PlanBuilder::scan("fact", fact),
                "dk",
                "dim_k",
                JoinType::Inner,
            )
            .order_by("score", true)
            .limit(k)
            .build()
    }

    #[test]
    fn topk_over_join_warm_replay_hits_and_restricts() {
        // Regression: join shapes used to be shut out of cache admission
        // because the row-fallback join discarded partition provenance —
        // the heap could never attribute its survivors to fact partitions.
        for threads in [1usize, 3] {
            let session = star_session(threads);
            let plan = topk_over_join(&session, 5);
            let cold = session.run(&plan).unwrap();
            assert_eq!(cold.report.cache, CacheOutcome::Miss);
            let warm = session.run(&plan).unwrap();
            assert_eq!(warm.report.cache, CacheOutcome::Hit, "threads {threads}");
            assert_eq!(warm.rows.rows, cold.rows.rows);
            assert!(warm.report.pruned_by_cache > 0, "probe scan not restricted");
            // Cold-run boundary refinement may already have narrowed the
            // probe scan to the contributing partitions, so `<=` (the
            // restriction proof is the pruned_by_cache counter above).
            assert!(warm.io.partitions_loaded <= cold.io.partitions_loaded);
            let stats = session.cache_stats();
            assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        }
    }

    #[test]
    fn fact_dml_keeps_join_topk_replays_correct() {
        let session = star_session(2);
        let plan = topk_over_join(&session, 5);
        session.run(&plan).unwrap();
        // INSERT a new global maximum on the target (probe) side: the
        // entry survives via appended partitions and the warm hit must
        // surface the new row through the join.
        session
            .insert_rows(
                "fact",
                vec![vec![
                    Value::Int(5_000),
                    Value::Int(3),
                    Value::Int(9_999_999),
                    Value::Int(0),
                ]],
            )
            .unwrap();
        let warm = session.run(&plan).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        assert_eq!(warm.rows.rows[0][4], Value::Int(9_999_999));
        // DELETE on the target invalidates the top-k entry as usual.
        session
            .delete_rows("fact", |row| row[2] == Value::Int(9_999_999))
            .unwrap();
        let after = session.run(&plan).unwrap();
        assert_eq!(after.report.cache, CacheOutcome::Miss);
        assert!(session.cache_stats().invalidations >= 1);
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&plan)
            .unwrap();
        assert_eq!(after.rows.rows, oracle.rows.rows);
    }

    #[test]
    fn dml_on_aux_dim_table_invalidates_join_topk_entry() {
        // Regression: the entry's restriction was computed against the old
        // build side. Serving it after a dim DELETE would replay a top-k
        // whose rows no longer join — the aux-table invalidation must fire.
        let session = star_session(2);
        let plan = topk_over_join(&session, 5);
        session.run(&plan).unwrap();
        assert_eq!(session.run(&plan).unwrap().report.cache, CacheOutcome::Hit);
        session
            .delete_rows("dim", |row| row[0] == Value::Int(3))
            .unwrap();
        let after = session.run(&plan).unwrap();
        assert_eq!(after.report.cache, CacheOutcome::Miss, "stale aux served");
        assert!(session.cache_stats().invalidations >= 1);
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&plan)
            .unwrap();
        assert_eq!(after.rows.rows, oracle.rows.rows);
    }

    #[test]
    fn untracked_aux_dml_is_rejected_as_stale() {
        // A dim mutation behind the session's back (no on_dml): the
        // lookup's aux-version check must reject the entry.
        let session = star_session(2);
        let plan = topk_over_join(&session, 5);
        session.run(&plan).unwrap();
        let handle = session.catalog.get("dim").unwrap();
        handle
            .write()
            .insert_rows(vec![vec![Value::Int(777), Value::Str("ghost".into())]]);
        let out = session.run(&plan).unwrap();
        assert_eq!(out.report.cache, CacheOutcome::Miss);
        assert_eq!(session.cache_stats().stale_rejections, 1);
    }

    #[test]
    fn filtered_aggregate_warm_replay_hits_and_restricts() {
        // Regression: aggregates were never admitted to the cache even
        // though the scan's filter survivors are an exact replay set.
        for threads in [1usize, 3] {
            let session = star_session(threads);
            let fact = star_schema(&session, "fact");
            let plan = PlanBuilder::scan("fact", fact)
                .filter(col("tag").eq(lit(123i64)))
                .aggregate(
                    vec!["dim_k"],
                    vec![AggFunc::Sum("score".into()), AggFunc::CountStar],
                )
                .build();
            let cold = session.run(&plan).unwrap();
            assert_eq!(cold.report.cache, CacheOutcome::Miss);
            let warm = session.run(&plan).unwrap();
            assert_eq!(warm.report.cache, CacheOutcome::Hit, "threads {threads}");
            assert_eq!(warm.rows.rows, cold.rows.rows);
            assert!(warm.report.pruned_by_cache > 0, "scan set not restricted");
        }
    }

    #[test]
    fn filtered_aggregate_entry_tracks_inserts() {
        let session = star_session(2);
        let fact = star_schema(&session, "fact");
        let plan = PlanBuilder::scan("fact", fact)
            .filter(col("tag").eq(lit(123i64)))
            .aggregate(
                vec!["dim_k"],
                vec![AggFunc::Sum("score".into()), AggFunc::CountStar],
            )
            .build();
        session.run(&plan).unwrap();
        // INSERT a row matching the filter: the appended partition rides
        // along, so the warm hit reflects the new row.
        session
            .insert_rows(
                "fact",
                vec![vec![
                    Value::Int(120),
                    Value::Int(2),
                    Value::Int(-50),
                    Value::Int(123),
                ]],
            )
            .unwrap();
        let warm = session.run(&plan).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&plan)
            .unwrap();
        assert_eq!(warm.rows.rows, oracle.rows.rows);
    }

    #[test]
    fn update_of_predicate_column_does_not_poison_warm_filter() {
        let session = cached_session(2);
        let schema = session.catalog.get("t").unwrap().read().schema().clone();
        // v = (k * 37) % 500; predicate selects a narrow v band.
        let plan = PlanBuilder::scan("t", schema)
            .filter(col("v").between(lit(490i64), lit(499i64)))
            .build();
        let cold = session.run(&plan).unwrap();
        assert_eq!(session.run(&plan).unwrap().report.cache, CacheOutcome::Hit);
        // Move rows *into* the predicate's range inside partitions the
        // entry never cached (v is the predicate column): the tracked
        // UPDATE must append the rewritten partitions so the warm replay
        // still sees every matching row.
        session
            .update_rows("t", |row| {
                let mut r = row.to_vec();
                if r[1] == Value::Int(7) {
                    r[1] = Value::Int(495);
                }
                r
            })
            .unwrap();
        let warm = session.run(&plan).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        let oracle = Executor::new(session.catalog.clone(), ExecConfig::no_pruning())
            .run(&plan)
            .unwrap();
        let sort = |rs: &crate::RowSet| {
            let mut rows = rs.rows.clone();
            rows.sort_by(|a, b| a[0].total_ord_cmp(&b[0]));
            rows
        };
        assert_eq!(sort(&warm.rows), sort(&oracle.rows));
        assert!(warm.rows.len() > cold.rows.len(), "moved rows must appear");
    }
}
