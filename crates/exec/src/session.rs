//! Multi-query session driver: the virtual-warehouse front door.
//!
//! A [`Session`] owns one shared [`MorselPool`] and runs batches of
//! compiled queries concurrently on it. Each query gets its own driver
//! (one scoped thread), its own [`IoStats`] handle, and its own injector
//! lane, so:
//!
//! * N concurrent queries share `ExecConfig::scan_threads` scan workers —
//!   not N×threads as the old per-scan scoped-thread model did;
//! * per-query I/O and prune counters are tallied race-free (counters are
//!   per-executor atomics, never shared across queries);
//! * round-robin lane scheduling keeps a long scan from starving short
//!   queries submitted in the same burst.

use snowprune_plan::Plan;
use snowprune_storage::Catalog;
use snowprune_types::{Error, Result};
use std::sync::Arc;

use crate::config::ExecConfig;
use crate::exec::{Executor, QueryOutput};
use crate::pool::MorselPool;

/// A shared-pool execution session for a burst of concurrent queries.
pub struct Session {
    catalog: Catalog,
    cfg: ExecConfig,
    pool: Arc<MorselPool>,
}

impl Session {
    /// Create a session with its own pool of `cfg.scan_threads` workers.
    /// Unlike [`Executor::new`], a session always routes scans through the
    /// pool — even at `scan_threads = 1` — so single-worker runs exercise
    /// the same code path the concurrency suites stress.
    pub fn new(catalog: Catalog, cfg: ExecConfig) -> Self {
        let pool = MorselPool::new(cfg.scan_threads.max(1));
        Session { catalog, cfg, pool }
    }

    /// A session on an existing pool (e.g. several sessions sharing one
    /// warehouse).
    pub fn with_pool(catalog: Catalog, cfg: ExecConfig, pool: Arc<MorselPool>) -> Self {
        Session { catalog, cfg, pool }
    }

    pub fn pool(&self) -> &Arc<MorselPool> {
        &self.pool
    }

    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// A fresh executor bound to this session's pool, with its own
    /// per-query I/O counters.
    pub fn executor(&self) -> Executor {
        Executor::with_pool(
            self.catalog.clone(),
            self.cfg.clone(),
            Arc::clone(&self.pool),
        )
    }

    /// Run one query on the shared pool.
    pub fn run(&self, plan: &Plan) -> Result<QueryOutput> {
        self.executor().run(plan)
    }

    /// Run a batch of queries concurrently on the shared pool, returning
    /// per-query outputs in input order. Each output carries that query's
    /// own `IoStats` delta and pruning report.
    pub fn run_batch(&self, plans: &[Plan]) -> Vec<Result<QueryOutput>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .map(|plan| scope.spawn(move || self.executor().run(plan)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::Invalid("query driver panicked".into())))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_plan::PlanBuilder;
    use snowprune_storage::{Field, Layout, Schema, TableBuilder};
    use snowprune_types::{ScalarType, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", ScalarType::Int),
            Field::new("v", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(25)
            .layout(Layout::ClusterBy(vec!["k".into()]));
        for i in 0..1000i64 {
            b.push_row(vec![Value::Int(i), Value::Int((i * 37) % 500)]);
        }
        let c = Catalog::new();
        c.register(b.build());
        c
    }

    fn schema_of(c: &Catalog) -> Schema {
        c.get("t").unwrap().read().schema().clone()
    }

    #[test]
    fn batch_results_match_individual_runs() {
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let plans: Vec<Plan> = (0..8)
            .map(|i| {
                PlanBuilder::scan("t", schema.clone())
                    .filter(col("k").between(lit(i * 100), lit(i * 100 + 250)))
                    .build()
            })
            .collect();
        let session = Session::new(catalog.clone(), ExecConfig::default().with_scan_threads(3));
        let batch = session.run_batch(&plans);
        for (plan, out) in plans.iter().zip(&batch) {
            let out = out.as_ref().unwrap();
            let solo = Executor::new(catalog.clone(), ExecConfig::default())
                .run(plan)
                .unwrap();
            let sort = |rs: &crate::RowSet| {
                let mut rows = rs.rows.clone();
                rows.sort_by(|a, b| a[0].total_ord_cmp(&b[0]));
                rows
            };
            assert_eq!(sort(&out.rows), sort(&solo.rows));
            // Per-query I/O deltas are isolated even though all eight
            // queries interleaved on three workers.
            assert_eq!(out.io.partitions_loaded, solo.io.partitions_loaded);
        }
    }

    #[test]
    fn prefetch_counters_thread_through_session_outputs() {
        // The new pipeline counters surface per query: the IoSnapshot delta
        // carries overlap/wall accounting and the report carries the
        // pipeline invariant, for every query of a concurrent batch.
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let plans: Vec<Plan> = (0..6)
            .map(|i| {
                PlanBuilder::scan("t", schema.clone())
                    .filter(col("k").between(lit(i * 120), lit(i * 120 + 300)))
                    .build()
            })
            .collect();
        let mut cfg = ExecConfig::default()
            .with_scan_threads(3)
            .with_prefetch_depth(4);
        // Zero metadata cost so the wall identity below covers exactly the
        // pipeline's load + evaluate time.
        cfg.io_cost.metadata_ns_per_read = 0;
        let session = Session::new(catalog, cfg);
        for out in session.run_batch(&plans) {
            let out = out.unwrap();
            let s = &out.report.scan_stats;
            assert_eq!(
                s.considered,
                s.loaded + s.skipped_by_boundary + s.cancelled_in_flight(),
                "pipeline invariant"
            );
            assert_eq!(out.io.partitions_loaded, s.loaded);
            assert!(out.io.io_overlapped_ns > 0, "depth 4 must overlap I/O");
            assert_eq!(
                out.io.simulated_wall_ns,
                out.io.simulated_io_ns + out.io.simulated_cpu_ns - out.io.io_overlapped_ns
            );
        }
    }

    #[test]
    fn single_worker_session_still_uses_pool_path() {
        let catalog = catalog();
        let schema = schema_of(&catalog);
        let plan = PlanBuilder::scan("t", schema)
            .filter(col("v").lt(lit(100i64)))
            .build();
        let session = Session::new(catalog, ExecConfig::default().with_scan_threads(1));
        assert_eq!(session.pool().worker_count(), 1);
        let out = session.run(&plan).unwrap();
        assert_eq!(out.rows.len(), 200);
    }
}
