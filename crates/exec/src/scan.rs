//! Table-scan compilation and partition streaming with runtime pruning
//! hooks (deferred filter pruning, top-k boundaries).
//!
//! Sequential streaming lives here ([`stream_scan`]); parallel scans run
//! as morsels on the shared [`crate::MorselPool`] (see `pool.rs`), which
//! reuses this module's per-partition pipeline via [`select_rows`].

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::sync::Arc;

use parking_lot::Mutex;
use snowprune_core::filter::{FilterPruneConfig, FilterPruner};
use snowprune_core::scan_set::ScanSet;
use snowprune_core::topk::Boundary;
use snowprune_expr::Expr;
use snowprune_storage::{
    IoCostModel, IoStats, MicroPartition, PartitionId, PartitionMeta, Schema, Table,
};
use snowprune_types::Result;

/// A table scan after compile-time filter pruning.
#[derive(Clone)]
pub struct CompiledScan {
    pub table_name: String,
    /// Consistent snapshot of the table (partitions are immutable `Arc`s).
    pub table: Arc<Table>,
    pub schema: Schema,
    /// Bound scan predicate (pushed-down filters).
    pub predicate: Option<Expr>,
    pub scan_set: ScanSet,
    pub partitions_total: usize,
    pub pruned_by_filter: u64,
    pub fully_matching: u64,
    /// Partitions whose compile-time pruning was deferred (§3.2); they sit
    /// in the scan set and are re-checked by the runtime pruner.
    pub deferred_ids: HashSet<PartitionId>,
}

impl CompiledScan {
    /// Compile a scan: snapshot the table, bind the predicate, and run
    /// compile-time filter pruning within the configured budget.
    pub fn compile(
        table_name: &str,
        table: Arc<Table>,
        predicate: Option<&Expr>,
        enable_filter_pruning: bool,
        filter_cfg: &FilterPruneConfig,
        io: &IoStats,
        io_cost: &IoCostModel,
    ) -> Result<CompiledScan> {
        let schema = table.schema().clone();
        let bound = predicate.map(|p| p.bind(&schema)).transpose()?;
        let metas: Vec<PartitionMeta> = table.read_metadata(io, io_cost);
        let partitions_total = metas.len();
        let (scan_set, pruned, fully, deferred_ids) = match (&bound, enable_filter_pruning) {
            (Some(pred), true) => {
                let mut pruner = FilterPruner::new(pred, filter_cfg.clone());
                let res = pruner.prune(&metas);
                let deferred: HashSet<PartitionId> = res
                    .scan_set
                    .entries
                    .iter()
                    .rev()
                    .take(res.deferred)
                    .map(|e| e.id)
                    .collect();
                (
                    res.scan_set,
                    res.pruned as u64,
                    res.fully_matching as u64,
                    deferred,
                )
            }
            _ => {
                // No predicate: every partition is trivially fully matching
                // (§4.2), which LIMIT pruning exploits.
                let mut ss = ScanSet::full(&metas);
                if bound.is_none() {
                    for e in &mut ss.entries {
                        e.class = snowprune_types::MatchClass::FullyMatching;
                    }
                }
                (
                    ss,
                    0,
                    if bound.is_none() {
                        partitions_total as u64
                    } else {
                        0
                    },
                    HashSet::new(),
                )
            }
        };
        Ok(CompiledScan {
            table_name: table_name.to_owned(),
            table,
            schema,
            predicate: bound,
            scan_set,
            partitions_total,
            pruned_by_filter: pruned,
            fully_matching: fully,
            deferred_ids,
        })
    }
}

/// Counters from one scan execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanRunStats {
    pub considered: u64,
    pub loaded: u64,
    pub skipped_by_boundary: u64,
    pub skipped_by_runtime_filter: u64,
    pub rows_emitted: u64,
}

/// Runtime hooks consulted before loading each partition.
pub struct ScanHooks<'a> {
    /// Top-k boundary and the ORDER BY column index.
    pub boundary: Option<(&'a Arc<Boundary>, usize)>,
    /// Runtime filter pruner for deferred partitions.
    pub runtime_pruner: Option<&'a Mutex<FilterPruner>>,
}

impl ScanHooks<'_> {
    pub fn none() -> ScanHooks<'static> {
        ScanHooks {
            boundary: None,
            runtime_pruner: None,
        }
    }
}

/// Stream the scan's partitions sequentially, invoking `sink` with each
/// loaded partition and the selected row indices. `sink` may stop the scan
/// early (LIMIT-style).
pub fn stream_scan(
    scan: &CompiledScan,
    io: &IoStats,
    io_cost: &IoCostModel,
    hooks: &ScanHooks<'_>,
    mut sink: impl FnMut(&MicroPartition, &[usize]) -> ControlFlow<()>,
) -> ScanRunStats {
    let mut stats = ScanRunStats::default();
    for entry in &scan.scan_set.entries {
        stats.considered += 1;
        let Ok(meta) = scan.table.partition_meta(entry.id) else {
            continue;
        };
        if let Some((boundary, col)) = hooks.boundary {
            if boundary.should_skip(&meta.zone_maps[col]) {
                stats.skipped_by_boundary += 1;
                continue;
            }
        }
        if let Some(pruner) = hooks.runtime_pruner {
            if scan.deferred_ids.contains(&entry.id)
                && pruner.lock().evaluate(&meta.zone_maps).prunable()
            {
                stats.skipped_by_runtime_filter += 1;
                continue;
            }
        }
        let Ok(part) = scan.table.load_partition(entry.id, io, io_cost) else {
            continue;
        };
        stats.loaded += 1;
        let selection = select_rows(scan, entry, &part);
        stats.rows_emitted += selection.len() as u64;
        if sink(&part, &selection).is_break() {
            break;
        }
    }
    stats
}

/// Evaluate the scan predicate on a partition. Fully-matching partitions
/// skip predicate evaluation entirely (a real CPU saving from §4's
/// classification).
pub(crate) fn select_rows(
    scan: &CompiledScan,
    entry: &snowprune_core::scan_set::ScanEntry,
    part: &MicroPartition,
) -> Vec<usize> {
    match (&scan.predicate, entry.class) {
        (None, _) | (_, snowprune_types::MatchClass::FullyMatching) => {
            (0..part.row_count()).collect()
        }
        (Some(pred), _) => {
            let truths = snowprune_expr::eval_truths(pred, part);
            snowprune_expr::selection_indices(&truths)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Layout, TableBuilder};
    use snowprune_types::{ScalarType, Value};

    fn table() -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(10)
            .layout(Layout::ClusterBy(vec!["x".into()]));
        for i in 0..200i64 {
            b.push_row(vec![Value::Int(i)]);
        }
        Arc::new(b.build())
    }

    #[test]
    fn compile_prunes_and_marks_fully_matching() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&col("x").lt(lit(25i64))),
            true,
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        assert_eq!(scan.partitions_total, 20);
        assert_eq!(scan.scan_set.len(), 3); // x in [0,25): partitions 0,1,2
        assert_eq!(scan.pruned_by_filter, 17);
        assert_eq!(scan.fully_matching, 2); // partitions 0 and 1 fully inside
        assert_eq!(io.snapshot().metadata_reads, 20);
    }

    #[test]
    fn stream_applies_predicate_and_counts_io() {
        let t = table();
        let io = IoStats::new();
        let model = IoCostModel::free();
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&col("x").lt(lit(25i64))),
            true,
            &FilterPruneConfig::default(),
            &io,
            &model,
        )
        .unwrap();
        let mut rows = Vec::new();
        let stats = stream_scan(&scan, &io, &model, &ScanHooks::none(), |part, sel| {
            for &i in sel {
                rows.push(part.row(i)[0].clone());
            }
            ControlFlow::Continue(())
        });
        assert_eq!(rows.len(), 25);
        assert_eq!(stats.loaded, 3);
        assert_eq!(io.snapshot().partitions_loaded, 3);
    }

    #[test]
    fn no_pruning_configuration_scans_everything() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&col("x").lt(lit(25i64))),
            false, // pruning disabled
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        assert_eq!(scan.scan_set.len(), 20);
        let stats = stream_scan(
            &scan,
            &io,
            &IoCostModel::free(),
            &ScanHooks::none(),
            |_, _| ControlFlow::Continue(()),
        );
        assert_eq!(stats.loaded, 20);
        assert_eq!(stats.rows_emitted, 25, "same rows, more I/O");
    }

    #[test]
    fn early_stop_halts_scan() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            None,
            true,
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        let mut n = 0u64;
        stream_scan(
            &scan,
            &io,
            &IoCostModel::free(),
            &ScanHooks::none(),
            |_, sel| {
                n += sel.len() as u64;
                if n >= 15 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(io.snapshot().partitions_loaded, 2);
    }

    #[test]
    fn boundary_hook_skips_partitions() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            None,
            true,
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        let boundary = Boundary::new(true);
        boundary.tighten(&Value::Int(150));
        let hooks = ScanHooks {
            boundary: Some((&boundary, 0)),
            runtime_pruner: None,
        };
        let stats = stream_scan(&scan, &io, &IoCostModel::free(), &hooks, |_, _| {
            ControlFlow::Continue(())
        });
        // Partitions with max <= 150: ids 0..=14 skipped (max 149 in id 14),
        // partition 15 has max 159 > 150.
        assert_eq!(stats.skipped_by_boundary, 15);
        assert_eq!(stats.loaded, 5);
    }

    #[test]
    fn pooled_scan_matches_sequential_rows() {
        // Strengthened from the old count-only check: the pooled scan must
        // reproduce the sequential scan's *row contents* exactly — both as
        // a sorted multiset and, after morsel-order reassembly, in the
        // identical scan-set order.
        let t = table();
        let io_seq = IoStats::new();
        let model = IoCostModel::free();
        let pred = col("x").ge(lit(100i64));
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&pred),
            true,
            &FilterPruneConfig::default(),
            &io_seq,
            &model,
        )
        .unwrap();
        let mut seq_rows: Vec<Vec<Value>> = Vec::new();
        let seq_stats = stream_scan(&scan, &io_seq, &model, &ScanHooks::none(), |part, sel| {
            seq_rows.extend(sel.iter().map(|&i| part.row(i)));
            ControlFlow::Continue(())
        });

        let pool = crate::pool::MorselPool::new(4);
        let io_pool = IoStats::new();
        let morsel_partitions = 3usize;
        let slots: Arc<Vec<Mutex<Vec<Vec<Value>>>>> = Arc::new(
            (0..scan.scan_set.len().div_ceil(morsel_partitions))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        );
        let sink_slots = Arc::clone(&slots);
        let stats = pool
            .submit(
                pool.next_lane(),
                crate::pool::ScanJobSpec {
                    scan: scan.clone(),
                    io: io_pool.clone(),
                    io_cost: model,
                    boundary: None,
                    runtime_pruner: None,
                    morsel_partitions,
                    sink: Box::new(move |mi, part, sel| {
                        let mut g = sink_slots[mi].lock();
                        g.extend(sel.iter().map(|&i| part.row(i)));
                    }),
                    stop: Box::new(|| false),
                    on_morsel_done: None,
                },
            )
            .wait();
        let pooled_rows: Vec<Vec<Value>> =
            slots.iter().flat_map(|slot| slot.lock().clone()).collect();

        assert_eq!(stats.loaded, seq_stats.loaded);
        assert_eq!(stats.rows_emitted, seq_stats.rows_emitted);
        assert_eq!(pooled_rows.len(), 100);
        // Morsel-order reassembly reproduces the sequential order exactly.
        assert_eq!(pooled_rows, seq_rows);
        let sort = |mut rows: Vec<Vec<Value>>| {
            rows.sort_by(|a, b| a[0].total_ord_cmp(&b[0]));
            rows
        };
        assert_eq!(sort(pooled_rows), sort(seq_rows));
        assert_eq!(io_pool.snapshot().partitions_loaded, 10);
    }
}
