//! Table-scan compilation and the load/evaluate prefetch pipeline shared by
//! every execution path.
//!
//! `run_scan_slice` is the single per-partition pipeline: it keeps up to
//! `prefetch_depth` partition loads in flight on an [`AsyncLake`] lane
//! while evaluating completed ones, re-checking the top-k boundary, the
//! deferred-filter pruner, and the early-stop signal at *completion* time
//! so a partition that became prunable while its load was in flight is
//! cancelled without ever charging I/O. The sequential [`stream_scan`]
//! drives it over the whole scan set; the shared [`crate::MorselPool`]
//! drives it per morsel — both therefore share identical pruning
//! decisions, counter ordering (the single `complete_load` helper), and
//! virtual-clock accounting.
//!
//! Completed loads are streamed to the sink **column-major**: each loaded
//! partition is chunked into `batch_rows` windows, the scan predicate runs
//! as selection-vector kernels per window, and the sink receives
//! [`Batch`]es (partition + [`SelVec`]) instead of materialized rows. The
//! batch size is purely a CPU-side knob — partitions load (and charge
//! I/O) whole, and every window of a loaded partition is always delivered
//! even after the sink breaks, so row/counter accounting is bit-identical
//! at every batch size.

use std::collections::{HashSet, VecDeque};
use std::ops::{ControlFlow, Range};
use std::sync::Arc;

use parking_lot::Mutex;
use snowprune_core::filter::{FilterPruneConfig, FilterPruner};
use snowprune_core::scan_set::ScanSet;
use snowprune_core::topk::Boundary;
use snowprune_expr::Expr;
use snowprune_storage::{
    AsyncLake, IoCostModel, IoStats, LoadTicket, MicroPartition, PartitionId, PartitionMeta,
    Schema, Table,
};
use snowprune_types::{Result, SelVec};

use crate::vector::Batch;

/// A table scan after compile-time filter pruning.
#[derive(Clone)]
pub struct CompiledScan {
    /// Name of the scanned table.
    pub table_name: String,
    /// Consistent snapshot of the table (partitions are immutable `Arc`s).
    pub table: Arc<Table>,
    /// The snapshot's schema (predicates are bound against it).
    pub schema: Schema,
    /// Bound scan predicate (pushed-down filters).
    pub predicate: Option<Expr>,
    /// Partitions that survived compile-time pruning, in scan order.
    pub scan_set: ScanSet,
    /// Partition count of the snapshot before any pruning.
    pub partitions_total: usize,
    /// Partitions dropped by compile-time filter pruning.
    pub pruned_by_filter: u64,
    /// Partitions whose every row matches the predicate (§4.1).
    pub fully_matching: u64,
    /// Partitions whose compile-time pruning was deferred (§3.2); they sit
    /// in the scan set and are re-checked by the runtime pruner.
    pub deferred_ids: HashSet<PartitionId>,
}

impl CompiledScan {
    /// Compile a scan: snapshot the table, bind the predicate, and run
    /// compile-time filter pruning within the configured budget.
    pub fn compile(
        table_name: &str,
        table: Arc<Table>,
        predicate: Option<&Expr>,
        enable_filter_pruning: bool,
        filter_cfg: &FilterPruneConfig,
        io: &IoStats,
        io_cost: &IoCostModel,
    ) -> Result<CompiledScan> {
        let schema = table.schema().clone();
        let bound = predicate.map(|p| p.bind(&schema)).transpose()?;
        let metas: Vec<PartitionMeta> = table.read_metadata(io, io_cost);
        let partitions_total = metas.len();
        let (scan_set, pruned, fully, deferred_ids) = match (&bound, enable_filter_pruning) {
            (Some(pred), true) => {
                let mut pruner = FilterPruner::new(pred, filter_cfg.clone());
                let res = pruner.prune(&metas);
                let deferred: HashSet<PartitionId> = res
                    .scan_set
                    .entries
                    .iter()
                    .rev()
                    .take(res.deferred)
                    .map(|e| e.id)
                    .collect();
                (
                    res.scan_set,
                    res.pruned as u64,
                    res.fully_matching as u64,
                    deferred,
                )
            }
            _ => {
                // No predicate: every partition is trivially fully matching
                // (§4.2), which LIMIT pruning exploits.
                let mut ss = ScanSet::full(&metas);
                if bound.is_none() {
                    for e in &mut ss.entries {
                        e.class = snowprune_types::MatchClass::FullyMatching;
                    }
                }
                (
                    ss,
                    0,
                    if bound.is_none() {
                        partitions_total as u64
                    } else {
                        0
                    },
                    HashSet::new(),
                )
            }
        };
        Ok(CompiledScan {
            table_name: table_name.to_owned(),
            table,
            schema,
            predicate: bound,
            scan_set,
            partitions_total,
            pruned_by_filter: pruned,
            fully_matching: fully,
            deferred_ids,
        })
    }
}

/// Counters from one scan execution. The pipeline invariant
/// `considered == loaded + skipped_by_boundary + cancelled_in_flight()`
/// holds on every path (entries dropped before submission are skips;
/// entries whose load was issued and then revoked are cancellations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanRunStats {
    /// Scan-set entries the pipeline looked at.
    pub considered: u64,
    /// Partition loads that completed and were charged.
    pub loaded: u64,
    /// Submit-time skips: the boundary already excluded the partition
    /// before its load was issued.
    pub skipped_by_boundary: u64,
    /// In-flight loads cancelled at completion time because the top-k
    /// boundary tightened after submission.
    pub cancelled_by_boundary: u64,
    /// Deferred-filter prunes (§3.2). Decided at load-completion time —
    /// the adaptive pruner must see each deferred partition exactly once,
    /// in scan order, on every path — cancelling the in-flight load free.
    pub cancelled_by_runtime_filter: u64,
    /// In-flight loads cancelled because the early-stop signal fired while
    /// they were being prefetched.
    pub cancelled_by_stop: u64,
    /// Rows passed to the sink after predicate selection.
    pub rows_emitted: u64,
}

impl ScanRunStats {
    /// Total in-flight loads cancelled before their I/O was charged.
    pub fn cancelled_in_flight(&self) -> u64 {
        self.cancelled_by_boundary + self.cancelled_by_runtime_filter + self.cancelled_by_stop
    }

    /// Accumulate another scan's counters (per-query report totals).
    pub fn merge(&mut self, other: &ScanRunStats) {
        self.considered += other.considered;
        self.loaded += other.loaded;
        self.skipped_by_boundary += other.skipped_by_boundary;
        self.cancelled_by_boundary += other.cancelled_by_boundary;
        self.cancelled_by_runtime_filter += other.cancelled_by_runtime_filter;
        self.cancelled_by_stop += other.cancelled_by_stop;
        self.rows_emitted += other.rows_emitted;
    }
}

/// Runtime hooks consulted while the pipeline runs.
pub struct ScanHooks<'a> {
    /// Top-k boundary and the ORDER BY column index.
    pub boundary: Option<(&'a Arc<Boundary>, usize)>,
    /// Runtime filter pruner for deferred partitions.
    pub runtime_pruner: Option<&'a Mutex<FilterPruner>>,
    /// Loads kept in flight ahead of evaluation; 1 = the blocking model.
    pub prefetch_depth: usize,
    /// Rows per column-major batch delivered to the sink (clamped to ≥ 1).
    /// `usize::MAX` delivers each partition as a single batch.
    pub batch_rows: usize,
}

impl ScanHooks<'_> {
    /// No runtime hooks: blocking depth-1 scan, whole-partition batches,
    /// no boundary or pruner.
    pub fn none() -> ScanHooks<'static> {
        ScanHooks {
            boundary: None,
            runtime_pruner: None,
            prefetch_depth: 1,
            batch_rows: usize::MAX,
        }
    }
}

/// Stream the scan's partitions sequentially, invoking `sink` with each
/// column-major [`Batch`] that survives predicate selection. `sink` may
/// stop the scan early (LIMIT-style); the current partition's remaining
/// windows still flow (keeping counters batch-size-invariant), then
/// submission halts and in-flight prefetches are cancelled free.
pub fn stream_scan(
    scan: &CompiledScan,
    io: &IoStats,
    io_cost: &IoCostModel,
    hooks: &ScanHooks<'_>,
    mut sink: impl FnMut(Batch) -> ControlFlow<()>,
) -> ScanRunStats {
    let mut stats = ScanRunStats::default();
    run_scan_slice(
        scan,
        0..scan.scan_set.len(),
        0,
        io,
        io_cost,
        hooks,
        &|| false,
        &mut stats,
        &mut sink,
    );
    stats
}

/// Run one contiguous slice of the scan set through the load/evaluate
/// prefetch pipeline — the single-slice wrapper over [`ScanPipeline`],
/// used by the sequential [`stream_scan`] (whole scan set,
/// `unconditional = 0`) and the single-morsel unit tests. The pool's
/// workers drive [`ScanPipeline`] directly so the prefetch window can
/// *carry across consecutive morsels of one query lane* instead of
/// draining at every morsel boundary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scan_slice(
    scan: &CompiledScan,
    range: Range<usize>,
    unconditional: usize,
    io: &IoStats,
    io_cost: &IoCostModel,
    hooks: &ScanHooks<'_>,
    stop: &dyn Fn() -> bool,
    stats: &mut ScanRunStats,
    sink: &mut dyn FnMut(Batch) -> ControlFlow<()>,
) {
    let mut pipeline = ScanPipeline::new(scan, io, io_cost);
    let mut tagged = |_tag: usize, batch: Batch| sink(batch);
    pipeline.run_slice(
        scan,
        range,
        unconditional,
        0,
        hooks,
        stop,
        stats,
        &mut tagged,
    );
    pipeline.drain(scan, hooks, stop, stats, &mut tagged);
    pipeline.finish();
}

/// The load/evaluate prefetch pipeline over one [`AsyncLake`] lane,
/// reusable across several contiguous slices of the same scan.
///
/// Submit stage ([`ScanPipeline::run_slice`]), per entry: early-stop check
/// (beyond the pre-assigned prefix), `considered` bump, submit-time
/// boundary skip, then an [`AsyncLake::submit_load`]. At most
/// `hooks.prefetch_depth` loads stay in flight; the oldest is resolved
/// before the next submission. Nothing drains at slice end — the caller
/// chains further slices (the cross-morsel carry) and calls
/// [`ScanPipeline::drain`] + [`ScanPipeline::finish`] once.
///
/// Completion stage, per in-flight load (FIFO, preserving scan-set output
/// order byte-identically): non-pre-assigned loads are re-checked against
/// the early stop and the (possibly tightened) boundary, and *every* load
/// runs the deferred filter pruner — any hit cancels the load with zero
/// I/O charged. §4.4 pre-assigned loads are exempt only from the runtime
/// *coordination* signals (stop, boundary), matching the blocking pool's
/// semantics where pre-assignment gated the stop check alone; a
/// partition's own deferred filter verdict still prunes it. The verdict is
/// pinned per slot at submit time, so a slot completing during a *later*
/// slice keeps its own slice's pre-assignment. Survivors complete through
/// [`complete_load`], get evaluated, and flow to `sink` tagged with the
/// slot's slice tag (the pool's morsel index — output reassembly stays
/// exact when a batch completes during a later morsel); a `Break` from
/// the sink halts submission and cancels the rest of the pipeline.
pub(crate) struct ScanPipeline<'s> {
    lake: AsyncLake,
    inflight: VecDeque<InflightSlot<'s>>,
    halted: bool,
}

impl<'s> ScanPipeline<'s> {
    /// A fresh pipeline (one virtual-clock lane) over `scan`.
    pub(crate) fn new(scan: &'s CompiledScan, io: &IoStats, io_cost: &IoCostModel) -> Self {
        ScanPipeline {
            lake: AsyncLake::new(Arc::clone(&scan.table), io.clone(), *io_cost),
            inflight: VecDeque::new(),
            halted: false,
        }
    }

    /// Submit one contiguous slice (see the type docs). `tag` labels every
    /// slot submitted here and rides to the sink with its batches.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_slice(
        &mut self,
        scan: &'s CompiledScan,
        range: Range<usize>,
        unconditional: usize,
        tag: usize,
        hooks: &ScanHooks<'_>,
        stop: &dyn Fn() -> bool,
        stats: &mut ScanRunStats,
        sink: &mut dyn FnMut(usize, Batch) -> ControlFlow<()>,
    ) {
        let depth = hooks.prefetch_depth.max(1);
        for (offset, index) in range.enumerate() {
            while self.inflight.len() >= depth {
                self.finish_next(scan, hooks, stop, stats, sink);
            }
            if offset >= unconditional && (self.halted || stop()) {
                self.halted = true;
                break;
            }
            let entry = &scan.scan_set.entries[index];
            // An unresolvable entry (impossible with immutable table
            // snapshots) is dropped before it is counted, preserving the
            // `considered == loaded + skipped + cancelled` identity.
            let Ok(meta) = scan.table.partition_meta(entry.id) else {
                continue;
            };
            stats.considered += 1;
            if let Some((boundary, col)) = hooks.boundary {
                if boundary.should_skip(&meta.zone_maps[col]) {
                    stats.skipped_by_boundary += 1;
                    continue;
                }
            }
            let ticket = self.lake.submit_load(entry.id, meta.bytes);
            self.inflight.push_back(InflightSlot {
                unconditional: offset < unconditional,
                index,
                tag,
                meta,
                ticket,
            });
        }
    }

    /// Resolve every still-in-flight load (FIFO).
    pub(crate) fn drain(
        &mut self,
        scan: &'s CompiledScan,
        hooks: &ScanHooks<'_>,
        stop: &dyn Fn() -> bool,
        stats: &mut ScanRunStats,
        sink: &mut dyn FnMut(usize, Batch) -> ControlFlow<()>,
    ) {
        while !self.inflight.is_empty() {
            self.finish_next(scan, hooks, stop, stats, sink);
        }
    }

    /// Close the lane, recording its makespan as simulated wall-clock.
    pub(crate) fn finish(mut self) {
        self.lake.finish();
    }

    /// Completion stage for the oldest in-flight load (see the type docs).
    fn finish_next(
        &mut self,
        scan: &'s CompiledScan,
        hooks: &ScanHooks<'_>,
        stop: &dyn Fn() -> bool,
        stats: &mut ScanRunStats,
        sink: &mut dyn FnMut(usize, Batch) -> ControlFlow<()>,
    ) {
        let slot = self
            .inflight
            .pop_front()
            // PANIC-OK: callers drain only while the queue is non-empty.
            .expect("in-flight queue non-empty");
        let entry = &scan.scan_set.entries[slot.index];
        // §4.4 pre-assigned partitions are never cancelled by the runtime
        // *coordination* signals (early stop, top-k boundary): they model
        // scan-set ranges already handed to workers before any LIMIT/top-k
        // coordination, matching the blocking pool, where pre-assignment
        // gated only the stop check.
        if !slot.unconditional {
            if self.halted || stop() {
                self.lake.cancel(slot.ticket);
                stats.cancelled_by_stop += 1;
                return;
            }
            if let Some((boundary, col)) = hooks.boundary {
                if boundary.should_skip(&slot.meta.zone_maps[col]) {
                    self.lake.cancel(slot.ticket);
                    stats.cancelled_by_boundary += 1;
                    return;
                }
            }
        }
        // The deferred filter verdict is the partition's own (§3.2), not a
        // coordination signal — it applies to pre-assigned entries too, and
        // runs here (completion, FIFO) so the adaptive pruner sees each
        // deferred partition exactly once, in scan order, on every path.
        if let Some(pruner) = hooks.runtime_pruner {
            if scan.deferred_ids.contains(&entry.id)
                && pruner.lock().evaluate(&slot.meta.zone_maps).prunable()
            {
                self.lake.cancel(slot.ticket);
                stats.cancelled_by_runtime_filter += 1;
                return;
            }
        }
        let Some(part) = complete_load(&mut self.lake, slot.ticket, &mut || stats.loaded += 1)
        else {
            return;
        };
        let n = part.row_count();
        let batch_rows = hooks.batch_rows.max(1);
        self.lake.note_evaluated(n as u64);
        // Chunked delivery. Every window of a loaded partition flows to the
        // sink even after it breaks (sticky break): early stop stays
        // partition-granular, so `rows_emitted` and the per-partition I/O
        // accounting are bit-identical at every batch size — the
        // differential and stress fingerprints depend on this.
        let mut start = 0usize;
        loop {
            let len = batch_rows.min(n - start);
            let sel = select_range(scan, entry, &part, start, len);
            stats.rows_emitted += sel.len() as u64;
            if sink(
                slot.tag,
                Batch {
                    part: Arc::clone(&part),
                    sel,
                },
            )
            .is_break()
            {
                self.halted = true;
            }
            start += len;
            if start >= n {
                break;
            }
        }
    }
}

/// One submitted-but-unresolved load in the pipeline.
struct InflightSlot<'a> {
    /// §4.4 verdict pinned at submit time: this slot sat inside its
    /// slice's pre-assigned prefix, so coordination signals never cancel
    /// it — even when it completes during a later chained slice.
    unconditional: bool,
    /// Index into the scan set.
    index: usize,
    /// Caller tag of the slice that submitted this slot (the pool's morsel
    /// index), echoed to the sink for exact output reassembly.
    tag: usize,
    /// Resolved at submit time; partitions are immutable snapshots, so the
    /// completion-stage re-checks can reuse it instead of re-resolving.
    meta: &'a PartitionMeta,
    ticket: LoadTicket,
}

/// The single load/record step shared by the blocking (depth-1) and
/// prefetch paths: completing the ticket charges the partition's bytes and
/// latency to `IoStats`, and only then is the `loaded` counter bumped —
/// one helper, one ordering, so the scan counter and the I/O charge cannot
/// diverge between execution paths (the seed split this across `pool.rs`
/// and `scan.rs`).
pub(crate) fn complete_load(
    lake: &mut AsyncLake,
    ticket: LoadTicket,
    loaded: &mut dyn FnMut(),
) -> Option<Arc<MicroPartition>> {
    let part = lake.complete(ticket).ok()?;
    loaded();
    Some(part)
}

/// Evaluate the scan predicate on one row window of a partition.
/// Fully-matching partitions skip predicate evaluation entirely (a real
/// CPU saving from §4's classification) and yield an allocation-free
/// contiguous selection; everything else runs the selection-vector
/// kernels of `snowprune_expr::kernel`.
pub(crate) fn select_range(
    scan: &CompiledScan,
    entry: &snowprune_core::scan_set::ScanEntry,
    part: &MicroPartition,
    start: usize,
    len: usize,
) -> SelVec {
    match (&scan.predicate, entry.class) {
        (None, _) | (_, snowprune_types::MatchClass::FullyMatching) => {
            SelVec::All(start..start + len)
        }
        (Some(pred), _) => snowprune_expr::kernel::select_range(pred, part, start, len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Layout, TableBuilder};
    use snowprune_types::{ScalarType, Value};

    fn table() -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(10)
            .layout(Layout::ClusterBy(vec!["x".into()]));
        for i in 0..200i64 {
            b.push_row(vec![Value::Int(i)]);
        }
        Arc::new(b.build())
    }

    fn compile(t: &Arc<Table>, io: &IoStats, pred: Option<&snowprune_expr::Expr>) -> CompiledScan {
        CompiledScan::compile(
            "t",
            Arc::clone(t),
            pred,
            true,
            &FilterPruneConfig::default(),
            io,
            &IoCostModel::free(),
        )
        .unwrap()
    }

    #[test]
    fn compile_prunes_and_marks_fully_matching() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&col("x").lt(lit(25i64))),
            true,
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        assert_eq!(scan.partitions_total, 20);
        assert_eq!(scan.scan_set.len(), 3); // x in [0,25): partitions 0,1,2
        assert_eq!(scan.pruned_by_filter, 17);
        assert_eq!(scan.fully_matching, 2); // partitions 0 and 1 fully inside
        assert_eq!(io.snapshot().metadata_reads, 20);
    }

    #[test]
    fn stream_applies_predicate_and_counts_io() {
        let t = table();
        let io = IoStats::new();
        let model = IoCostModel::free();
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&col("x").lt(lit(25i64))),
            true,
            &FilterPruneConfig::default(),
            &io,
            &model,
        )
        .unwrap();
        let mut rows = Vec::new();
        let stats = stream_scan(&scan, &io, &model, &ScanHooks::none(), |batch| {
            for i in batch.sel.iter() {
                rows.push(batch.part.row(i)[0].clone());
            }
            ControlFlow::Continue(())
        });
        assert_eq!(rows.len(), 25);
        assert_eq!(stats.loaded, 3);
        assert_eq!(io.snapshot().partitions_loaded, 3);
    }

    #[test]
    fn no_pruning_configuration_scans_everything() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&col("x").lt(lit(25i64))),
            false, // pruning disabled
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        assert_eq!(scan.scan_set.len(), 20);
        let stats = stream_scan(&scan, &io, &IoCostModel::free(), &ScanHooks::none(), |_| {
            ControlFlow::Continue(())
        });
        assert_eq!(stats.loaded, 20);
        assert_eq!(stats.rows_emitted, 25, "same rows, more I/O");
    }

    #[test]
    fn early_stop_halts_scan() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            None,
            true,
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        let mut n = 0u64;
        stream_scan(
            &scan,
            &io,
            &IoCostModel::free(),
            &ScanHooks::none(),
            |batch| {
                n += batch.len() as u64;
                if n >= 15 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(io.snapshot().partitions_loaded, 2);
    }

    #[test]
    fn boundary_hook_skips_partitions() {
        let t = table();
        let io = IoStats::new();
        let scan = CompiledScan::compile(
            "t",
            t,
            None,
            true,
            &FilterPruneConfig::default(),
            &io,
            &IoCostModel::free(),
        )
        .unwrap();
        let boundary = Boundary::new(true);
        boundary.tighten(&Value::Int(150));
        let hooks = ScanHooks {
            boundary: Some((&boundary, 0)),
            runtime_pruner: None,
            prefetch_depth: 1,
            batch_rows: usize::MAX,
        };
        let stats = stream_scan(&scan, &io, &IoCostModel::free(), &hooks, |_| {
            ControlFlow::Continue(())
        });
        // Partitions with max <= 150: ids 0..=14 skipped (max 149 in id 14),
        // partition 15 has max 159 > 150.
        assert_eq!(stats.skipped_by_boundary, 15);
        assert_eq!(stats.loaded, 5);
    }

    #[test]
    fn pooled_scan_matches_sequential_rows() {
        // Strengthened from the old count-only check: the pooled scan must
        // reproduce the sequential scan's *row contents* exactly — both as
        // a sorted multiset and, after morsel-order reassembly, in the
        // identical scan-set order.
        let t = table();
        let io_seq = IoStats::new();
        let model = IoCostModel::free();
        let pred = col("x").ge(lit(100i64));
        let scan = CompiledScan::compile(
            "t",
            t,
            Some(&pred),
            true,
            &FilterPruneConfig::default(),
            &io_seq,
            &model,
        )
        .unwrap();
        let mut seq_rows: Vec<Vec<Value>> = Vec::new();
        let seq_stats = stream_scan(&scan, &io_seq, &model, &ScanHooks::none(), |batch| {
            seq_rows.extend(batch.sel.iter().map(|i| batch.part.row(i)));
            ControlFlow::Continue(())
        });

        let pool = crate::pool::MorselPool::new(4);
        let io_pool = IoStats::new();
        let morsel_partitions = 3usize;
        let slots: Arc<Vec<Mutex<Vec<Vec<Value>>>>> = Arc::new(
            (0..scan.scan_set.len().div_ceil(morsel_partitions))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        );
        let sink_slots = Arc::clone(&slots);
        let stats = pool
            .submit(
                pool.next_lane(),
                crate::pool::ScanJobSpec {
                    scan: scan.clone(),
                    io: io_pool.clone(),
                    io_cost: model,
                    boundary: None,
                    runtime_pruner: None,
                    morsel_partitions,
                    prefetch_depth: 2,
                    batch_rows: usize::MAX,
                    sink: Box::new(move |mi, batch| {
                        let mut g = sink_slots[mi].lock();
                        g.extend(batch.sel.iter().map(|i| batch.part.row(i)));
                    }),
                    stop: Box::new(|| false),
                    on_morsel_done: None,
                },
            )
            .wait();
        let pooled_rows: Vec<Vec<Value>> =
            slots.iter().flat_map(|slot| slot.lock().clone()).collect();

        assert_eq!(stats.loaded, seq_stats.loaded);
        assert_eq!(stats.rows_emitted, seq_stats.rows_emitted);
        assert_eq!(pooled_rows.len(), 100);
        // Morsel-order reassembly reproduces the sequential order exactly.
        assert_eq!(pooled_rows, seq_rows);
        let sort = |mut rows: Vec<Vec<Value>>| {
            rows.sort_by(|a, b| a[0].total_ord_cmp(&b[0]));
            rows
        };
        assert_eq!(sort(pooled_rows), sort(seq_rows));
        assert_eq!(io_pool.snapshot().partitions_loaded, 10);
    }

    #[test]
    fn loaded_counter_and_io_charge_move_in_lockstep() {
        // Pins the ordering of the shared load/record helper: when the
        // `loaded` callback fires, the IoStats charge for that partition
        // has already landed — and an unresolved ticket bumps neither.
        let t = table();
        let io = IoStats::new();
        let model = IoCostModel::free();
        let mut lake = AsyncLake::new(Arc::clone(&t), io.clone(), model);
        let mut loaded = 0u64;
        for id in 0..3u64 {
            let bytes = t.partition_meta(id).unwrap().bytes;
            let ticket = lake.submit_load(id, bytes);
            assert_eq!(io.snapshot().partitions_loaded, loaded, "no charge yet");
            let io_probe = io.clone();
            let part = complete_load(&mut lake, ticket, &mut || {
                loaded += 1;
                // The I/O charge precedes the counter bump.
                assert_eq!(io_probe.snapshot().partitions_loaded, loaded);
            })
            .unwrap();
            assert_eq!(part.meta.id, id);
        }
        assert_eq!(loaded, 3);
        assert_eq!(io.snapshot().partitions_loaded, 3);
        // Cancelled tickets bump neither side.
        let ticket = lake.submit_load(3, t.partition_meta(3).unwrap().bytes);
        lake.cancel(ticket);
        assert_eq!(io.snapshot().partitions_loaded, 3);
        assert_eq!(io.snapshot().loads_cancelled, 1);
    }

    #[test]
    fn prefetch_depths_agree_with_blocking_on_boundary_scans() {
        // Sequential law: because completions are FIFO and the boundary is
        // monotone, a depth-d pipeline loads exactly the partitions the
        // blocking path loads — submit-time skips plus completion-time
        // cancellations together equal the blocking path's skips.
        let t = table();
        let run = |depth: usize| -> (ScanRunStats, u64, Vec<Value>) {
            let io = IoStats::new();
            let scan = compile(&t, &io, None);
            let boundary = Boundary::new(true);
            let hooks = ScanHooks {
                boundary: Some((&boundary, 0)),
                runtime_pruner: None,
                prefetch_depth: depth,
                batch_rows: usize::MAX,
            };
            let mut rows = Vec::new();
            let stats = stream_scan(&scan, &io, &IoCostModel::free(), &hooks, |batch| {
                for i in batch.sel.iter() {
                    let v = batch.part.row(i)[0].clone();
                    rows.push(v.clone());
                    // Tighten as a heap would: after 30 rows the 30th-best
                    // value bounds the scan.
                    if rows.len() == 30 {
                        boundary.tighten_inclusive(&Value::Int(170));
                    }
                }
                ControlFlow::Continue(())
            });
            (stats, io.snapshot().partitions_loaded, rows)
        };
        let (s1, loaded1, rows1) = run(1);
        for depth in [2usize, 4, 8] {
            let (sd, loadedd, rowsd) = run(depth);
            assert_eq!(sd.loaded, s1.loaded, "depth {depth} loads diverged");
            assert_eq!(loadedd, loaded1);
            assert_eq!(rowsd, rows1, "depth {depth} rows diverged");
            assert_eq!(
                sd.skipped_by_boundary + sd.cancelled_by_boundary,
                s1.skipped_by_boundary + s1.cancelled_by_boundary,
            );
            assert_eq!(
                sd.considered,
                sd.loaded + sd.skipped_by_boundary + sd.cancelled_in_flight()
            );
        }
        // The boundary tightened mid-flight, so deeper pipelines must have
        // cancelled at least one submitted load instead of skipping it.
        let (s8, _, _) = run(8);
        assert!(s8.cancelled_by_boundary > 0, "no in-flight cancellation");
        assert_eq!(s1.cancelled_by_boundary, 0, "depth 1 cannot cancel");
    }

    #[test]
    fn sink_break_cancels_inflight_prefetches() {
        let t = table();
        let io = IoStats::new();
        let scan = compile(&t, &io, None);
        let hooks = ScanHooks {
            boundary: None,
            runtime_pruner: None,
            prefetch_depth: 4,
            batch_rows: usize::MAX,
        };
        let mut n = 0u64;
        let stats = stream_scan(&scan, &io, &IoCostModel::free(), &hooks, |batch| {
            n += batch.len() as u64;
            if n >= 15 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        // Identical I/O to the blocking early stop: partitions prefetched
        // past the break are cancelled, not loaded.
        assert_eq!(io.snapshot().partitions_loaded, 2);
        assert_eq!(stats.loaded, 2);
        assert!(stats.cancelled_by_stop > 0);
        assert_eq!(io.snapshot().loads_cancelled, stats.cancelled_in_flight());
    }

    #[test]
    fn prefetch_overlaps_simulated_io_with_evaluation() {
        let t = table();
        let model = IoCostModel {
            latency_ns_per_request: 10_000,
            throughput_bytes_per_sec: u64::MAX,
            metadata_ns_per_read: 0,
            eval_ns_per_row: 1_000,
        };
        let run = |depth: usize| {
            let io = IoStats::new();
            let scan = compile(&t, &io, None);
            let hooks = ScanHooks {
                boundary: None,
                runtime_pruner: None,
                prefetch_depth: depth,
                batch_rows: usize::MAX,
            };
            stream_scan(&scan, &io, &model, &hooks, |_| ControlFlow::Continue(()));
            io.snapshot()
        };
        let blocking = run(1);
        let prefetched = run(2);
        assert_eq!(blocking.io_overlapped_ns, 0);
        assert_eq!(
            blocking.simulated_wall_ns,
            blocking.simulated_io_ns + blocking.simulated_cpu_ns
        );
        assert_eq!(prefetched.bytes_loaded, blocking.bytes_loaded);
        assert!(prefetched.io_overlapped_ns > 0);
        assert!(prefetched.simulated_wall_ns < blocking.simulated_wall_ns);
        assert_eq!(
            prefetched.simulated_wall_ns,
            prefetched.simulated_io_ns + prefetched.simulated_cpu_ns - prefetched.io_overlapped_ns
        );
    }

    #[test]
    fn batch_size_never_changes_rows_or_counters() {
        // The batch size is a pure CPU-side chunking knob: rows delivered,
        // every pipeline counter, and the full I/O snapshot must be
        // bit-identical at any `batch_rows` — including with a sink that
        // breaks mid-partition (sticky break keeps early stop
        // partition-granular).
        let t = table();
        let model = IoCostModel::free();
        let run = |batch_rows: usize, stop_at: Option<u64>| {
            let io = IoStats::new();
            let scan = compile(&t, &io, Some(&col("x").ge(lit(40i64))));
            let hooks = ScanHooks {
                boundary: None,
                runtime_pruner: None,
                prefetch_depth: 2,
                batch_rows,
            };
            let mut rows: Vec<Value> = Vec::new();
            let mut seen = 0u64;
            let stats = stream_scan(&scan, &io, &model, &hooks, |batch| {
                for i in batch.sel.iter() {
                    rows.push(batch.part.row(i)[0].clone());
                }
                seen += batch.len() as u64;
                match stop_at {
                    Some(n) if seen >= n => ControlFlow::Break(()),
                    _ => ControlFlow::Continue(()),
                }
            });
            (rows, stats, io.snapshot())
        };
        for stop_at in [None, Some(7u64), Some(25)] {
            let (rows_ref, stats_ref, io_ref) = run(usize::MAX, stop_at);
            for batch_rows in [1usize, 3, 7, 1024] {
                let (rows, stats, io) = run(batch_rows, stop_at);
                assert_eq!(rows, rows_ref, "rows diverged at batch {batch_rows}");
                assert_eq!(stats, stats_ref, "stats diverged at batch {batch_rows}");
                assert_eq!(io, io_ref, "io diverged at batch {batch_rows}");
            }
        }
    }
}
