//! Admission control for production-scale multi-tenant bursts.
//!
//! [`crate::Session::run_admitted`] puts a per-tenant queue in front of
//! the shared [`crate::MorselPool`] instead of `run_batch`'s
//! one-driver-thread-per-plan unbounded fan-in:
//!
//! * **Concurrency caps.** Each tenant runs at most
//!   [`crate::ExecConfig::tenant_max_concurrent`] queries at once under a
//!   *windowed FIFO* discipline: query `i` of a tenant may start only
//!   once all of queries `0..=i - C` have completed (`C` = the cap).
//!   Cross-tenant scheduling is round-robin over tenants with eligible
//!   work, mirroring the injector's lane rotation one level up.
//! * **Queue caps.** Beyond the `C` runnable slots each tenant may queue
//!   at most [`crate::ExecConfig::admission_queue_cap`] further queries;
//!   the rest of the burst is refused upfront with
//!   [`Admission::Rejected`]. Admission is decided from arrival order
//!   alone — never from live completion timing — so the rejection set is
//!   deterministic.
//! * **Adaptive prefetch depth.** With
//!   [`crate::ExecConfig::adaptive_prefetch`] on, each tenant's prefetch
//!   depth is steered by the observed unhidden-I/O vs. CPU balance of its
//!   own completed queries ([`IoSnapshot::unhidden_io_ns`]), bounded to
//!   `[1, prefetch_max_depth]`. See `next_depth` in this module for the
//!   update rule and the determinism argument.
//! * **Fairness metrics.** The run returns per-tenant [`TenantStats`]
//!   (queue wait, morsels run, max lane gap, rejections) computed from
//!   the deterministic per-query virtual clocks, so starvation checks are
//!   exact and reproducible rather than sampled from host timing.
//!
//! Every per-query result is byte-identical to a sequential run of the
//! same plan: admission changes *when* a query runs and how deep its
//! prefetch window is, and neither affects result bytes (depth never
//! changes which partitions load absent runtime signals, and runtime
//! signals only ever under-prune).

use std::sync::atomic::{AtomicBool, Ordering};
// STD-SYNC-OK: admission shares the pool's poisoning-based worker-panic
// propagation (see pool.rs); parking_lot locks cannot observe a panic.
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use snowprune_plan::Plan;
use snowprune_storage::IoSnapshot;
use snowprune_types::Error;

use crate::exec::QueryOutput;
use crate::session::Session;

/// Identifies one tenant in an admitted burst. Tenant ids are opaque to
/// the engine — stats are reported per distinct id, first-arrival order.
pub type TenantId = u64;

/// Outcome of one arrival in an admission-controlled burst.
#[derive(Debug)]
pub enum Admission {
    /// The query was admitted and ran to completion on the shared pool.
    Completed(Box<QueryOutput>),
    /// The query was admitted but returned an execution error.
    Failed(Error),
    /// The tenant's window (`tenant_max_concurrent` runnable +
    /// `admission_queue_cap` queued) was already full when this query
    /// arrived; it was refused without touching the pool.
    Rejected,
}

impl Admission {
    /// The completed output, if this arrival ran successfully.
    pub fn output(&self) -> Option<&QueryOutput> {
        match self {
            Admission::Completed(out) => Some(out),
            _ => None,
        }
    }

    /// Whether this arrival was refused at admission.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Admission::Rejected)
    }
}

/// Per-tenant fairness/starvation metrics for one admitted burst.
///
/// The wait/gap numbers come from a *virtual-time replay* of the tenant's
/// admitted queries over `tenant_max_concurrent` lanes: every query of
/// the burst arrives at virtual time 0, queries start greedily in
/// admitted order on the earliest-free lane, and each occupies its lane
/// for its deterministic `simulated_wall_ns`. Because the replay consumes
/// only per-query virtual clocks (never host timing), the stats are
/// bit-identical across runs and safe to include in stress fingerprints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant these stats describe.
    pub tenant: TenantId,
    /// Arrivals admitted (ran, successfully or not).
    pub admitted: usize,
    /// Arrivals refused at admission.
    pub rejected: usize,
    /// Morsels executed across the tenant's queries (scan-set entries
    /// considered, grouped by `morsel_partitions`).
    pub morsels_run: u64,
    /// Largest virtual queue wait of any admitted query.
    pub max_queue_wait_ns: u64,
    /// Sum of virtual queue waits across admitted queries.
    pub total_queue_wait_ns: u64,
    /// Largest virtual gap between consecutive query starts — a starving
    /// tenant shows up as a gap far beyond its own queries' runtimes.
    pub max_lane_gap_ns: u64,
    /// Prefetch depths used, in completed-prefix order: entry `j` is the
    /// depth available to the query at window position `j` (all equal to
    /// `ExecConfig::prefetch_depth` unless `adaptive_prefetch` is on).
    pub depth_hist: Vec<usize>,
}

/// Result of [`crate::Session::run_admitted`]: per-arrival outcomes plus
/// per-tenant fairness metrics.
#[derive(Debug)]
pub struct AdmissionRun {
    /// One outcome per arrival, in arrival order.
    pub outcomes: Vec<Admission>,
    /// Per-tenant stats, in first-arrival order of the tenant ids.
    pub tenants: Vec<TenantStats>,
}

impl AdmissionRun {
    /// Stats for one tenant, if it appeared in the burst.
    pub fn tenant(&self, id: TenantId) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.tenant == id)
    }
}

/// Deterministic adaptive-depth update rule (pure integer arithmetic).
///
/// Given the [`IoSnapshot`] delta of a completed query and the depth its
/// window position used, pick the depth for the next window position:
///
/// * unhidden I/O (`wall - cpu`) above half the CPU time — the lane is
///   I/O-bound, double the depth (capped at `max`);
/// * overlapped I/O below one eighth of the CPU time — the pipeline is
///   barely used (CPU-bound lane), halve the depth (floored at 1);
/// * otherwise hold.
///
/// Determinism: the rule itself is pure, and the *inputs* are pinned by
/// the windowed-FIFO discipline. The depth history is extended only along
/// a tenant's completed prefix (query `j`'s snapshot produces entry
/// `j + 1`), and query `i` reads the fixed index `max(i + 1 - C, 0)` —
/// which the window guarantees exists before `i` may start. No entry is
/// ever read before the completions that define it, and completion
/// *timing* (which query of the window finishes first, which worker ran
/// it) never changes any entry's value.
fn next_depth(depth: usize, snap: &IoSnapshot, max: usize) -> usize {
    let unhidden = snap.unhidden_io_ns();
    let cpu = snap.simulated_cpu_ns;
    if unhidden > cpu / 2 {
        (depth * 2).min(max)
    } else if snap.io_overlapped_ns * 8 < cpu {
        (depth / 2).max(1)
    } else {
        depth
    }
}

/// Scheduler state for one tenant's admitted queries.
struct TenantSched {
    id: TenantId,
    /// Global arrival indices of admitted queries, in arrival order.
    admitted: Vec<usize>,
    rejected: usize,
    /// Next admitted index not yet started.
    next_start: usize,
    done: Vec<bool>,
    /// IoSnapshot deltas of completed queries (None for failed ones).
    snaps: Vec<Option<IoSnapshot>>,
    /// Length of the fully-completed prefix of `admitted`.
    completed_prefix: usize,
    /// `depth_hist[j]` = prefetch depth for window position `j`; always
    /// `completed_prefix + 1` entries long.
    depth_hist: Vec<usize>,
}

struct Sched {
    tenants: Vec<TenantSched>,
    /// Round-robin pick cursor over `tenants`.
    cursor: usize,
    /// Admitted queries not yet handed to a driver.
    unstarted: usize,
}

struct Pick {
    tenant_idx: usize,
    query_idx: usize,
    global: usize,
    depth: usize,
}

impl Sched {
    /// Claim the next eligible query, round-robin over tenants starting at
    /// the cursor. Eligibility is the windowed FIFO: tenant `t`'s next
    /// query `i` may start iff `i < completed_prefix + C`.
    fn pick(&mut self, cap: usize) -> Option<Pick> {
        let n = self.tenants.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            let t = &mut self.tenants[idx];
            let i = t.next_start;
            if i < t.admitted.len() && i < t.completed_prefix + cap {
                t.next_start += 1;
                self.unstarted -= 1;
                self.cursor = (idx + 1) % n;
                return Some(Pick {
                    tenant_idx: idx,
                    query_idx: i,
                    global: t.admitted[i],
                    depth: t.depth_hist[(i + 1).saturating_sub(cap)],
                });
            }
        }
        None
    }

    /// Record a completion and extend the tenant's depth history along the
    /// newly-completed prefix.
    fn complete(
        &mut self,
        tenant_idx: usize,
        query_idx: usize,
        snap: Option<IoSnapshot>,
        adaptive: bool,
        max_depth: usize,
    ) {
        let t = &mut self.tenants[tenant_idx];
        t.done[query_idx] = true;
        t.snaps[query_idx] = snap;
        while t.completed_prefix < t.admitted.len() && t.done[t.completed_prefix] {
            // PANIC-OK: depth_hist is seeded at construction, never emptied.
            let last = *t.depth_hist.last().expect("seeded with initial depth");
            let next = match (&t.snaps[t.completed_prefix], adaptive) {
                (Some(snap), true) => next_depth(last, snap, max_depth),
                _ => last,
            };
            t.depth_hist.push(next);
            t.completed_prefix += 1;
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Run an admission-controlled burst on the session's pool. See the
/// module docs for the discipline; [`crate::Session::run_admitted`] is
/// the public entry point.
pub(crate) fn run_admitted(session: &Session, arrivals: &[(TenantId, Plan)]) -> AdmissionRun {
    let cfg = session.config();
    let cap = cfg.tenant_max_concurrent.max(1);
    let queue_cap = cfg.admission_queue_cap;
    let max_depth = cfg.prefetch_max_depth.max(1);
    let adaptive = cfg.adaptive_prefetch;
    let initial_depth = if adaptive {
        cfg.prefetch_depth.clamp(1, max_depth)
    } else {
        cfg.prefetch_depth.max(1)
    };

    // ---- burst admission: decided from arrival order alone -------------
    let mut tenants: Vec<TenantSched> = Vec::new();
    let mut outcomes: Vec<Option<Admission>> = Vec::with_capacity(arrivals.len());
    for (global, (tenant, _plan)) in arrivals.iter().enumerate() {
        let idx = match tenants.iter().position(|t| t.id == *tenant) {
            Some(idx) => idx,
            None => {
                tenants.push(TenantSched {
                    id: *tenant,
                    admitted: Vec::new(),
                    rejected: 0,
                    next_start: 0,
                    done: Vec::new(),
                    snaps: Vec::new(),
                    completed_prefix: 0,
                    depth_hist: vec![initial_depth],
                });
                tenants.len() - 1
            }
        };
        let t = &mut tenants[idx];
        if t.admitted.len() < cap + queue_cap {
            t.admitted.push(global);
            t.done.push(false);
            t.snaps.push(None);
            outcomes.push(None);
        } else {
            t.rejected += 1;
            outcomes.push(Some(Admission::Rejected));
        }
    }

    // ---- bounded-driver execution --------------------------------------
    let unstarted = tenants.iter().map(|t| t.admitted.len()).sum();
    let sched = Mutex::new(Sched {
        tenants,
        cursor: 0,
        unstarted,
    });
    let work_cv = Condvar::new();
    let results = Mutex::new(outcomes);
    let driver_panicked = AtomicBool::new(false);
    let drivers = session.pool().worker_count().max(1).min(unstarted.max(1));
    std::thread::scope(|scope| {
        for _ in 0..drivers {
            scope.spawn(|| {
                let mut st = lock(&sched);
                loop {
                    let pick = match st.pick(cap) {
                        Some(pick) => pick,
                        None if st.unstarted == 0 => return,
                        None => {
                            st = work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                            continue;
                        }
                    };
                    drop(st);
                    let exec = session.executor_with_prefetch_depth(pick.depth);
                    let plan = &arrivals[pick.global].1;
                    // A panicking query must not wedge the whole burst:
                    // record it as Failed, complete the slot (so the
                    // tenant's window reopens), and flag the run.
                    let outcome =
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            exec.run(plan)
                        })) {
                            Ok(Ok(out)) => Admission::Completed(Box::new(out)),
                            Ok(Err(e)) => Admission::Failed(e),
                            Err(_) => {
                                driver_panicked.store(true, Ordering::Release);
                                Admission::Failed(Error::Invalid("query driver panicked".into()))
                            }
                        };
                    let snap = outcome.output().map(|out| out.io);
                    lock(&results)[pick.global] = Some(outcome);
                    st = lock(&sched);
                    st.complete(pick.tenant_idx, pick.query_idx, snap, adaptive, max_depth);
                    work_cv.notify_all();
                }
            });
        }
    });
    if driver_panicked.load(Ordering::Acquire) {
        // PANIC-OK: deliberate panic propagation from a worker thread.
        panic!("a query panicked inside an admitted burst");
    }

    let outcomes: Vec<Admission> = lock(&results)
        .drain(..)
        // PANIC-OK: the burst drivers above filled every slot or panicked.
        .map(|o| o.expect("every admitted query ran"))
        .collect();
    let sched = lock(&sched);

    // ---- deterministic fairness metrics (virtual-time replay) ----------
    let morsel_partitions = cfg.morsel_partitions.max(1) as u64;
    let tenants = sched
        .tenants
        .iter()
        .map(|t| {
            let mut stats = TenantStats {
                tenant: t.id,
                admitted: t.admitted.len(),
                rejected: t.rejected,
                depth_hist: t.depth_hist.clone(),
                ..TenantStats::default()
            };
            let mut lanes = vec![0u64; cap];
            let mut last_start: Option<u64> = None;
            for &global in &t.admitted {
                let (wall, considered) = match &outcomes[global] {
                    Admission::Completed(out) => {
                        (out.io.simulated_wall_ns, out.report.scan_stats.considered)
                    }
                    _ => (0, 0),
                };
                let lane = lanes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &busy)| (busy, i))
                    .map(|(i, _)| i)
                    // PANIC-OK: tenant_max_concurrent is clamped to >= 1.
                    .expect("cap >= 1");
                let start = lanes[lane];
                stats.total_queue_wait_ns += start;
                stats.max_queue_wait_ns = stats.max_queue_wait_ns.max(start);
                if let Some(prev) = last_start {
                    stats.max_lane_gap_ns = stats.max_lane_gap_ns.max(start - prev);
                }
                last_start = Some(start);
                lanes[lane] = start + wall;
                stats.morsels_run += considered.div_ceil(morsel_partitions);
            }
            stats
        })
        .collect();

    AdmissionRun { outcomes, tenants }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(wall: u64, cpu: u64, overlapped: u64) -> IoSnapshot {
        IoSnapshot {
            simulated_wall_ns: wall,
            simulated_cpu_ns: cpu,
            io_overlapped_ns: overlapped,
            ..IoSnapshot::default()
        }
    }

    #[test]
    fn depth_rule_grows_on_io_bound_lanes() {
        // wall 10ms vs cpu 2ms: unhidden 8ms > 1ms ⇒ double.
        let s = snap(10_000_000, 2_000_000, 1_000_000);
        assert_eq!(next_depth(1, &s, 8), 2);
        assert_eq!(next_depth(4, &s, 8), 8);
        assert_eq!(next_depth(8, &s, 8), 8, "bounded at max");
    }

    #[test]
    fn depth_rule_shrinks_on_cpu_bound_lanes() {
        // wall ≈ cpu, barely any overlap used ⇒ halve, floored at 1.
        let s = snap(10_100_000, 10_000_000, 100_000);
        assert_eq!(next_depth(8, &s, 8), 4);
        assert_eq!(next_depth(1, &s, 8), 1);
    }

    #[test]
    fn depth_rule_holds_when_balanced() {
        // Overlap is doing real work and little I/O is left unhidden.
        let s = snap(10_500_000, 10_000_000, 4_000_000);
        assert_eq!(next_depth(4, &s, 8), 4);
    }
}
