//! `snowprune-exec`: a vectorized-ish, pipelining execution engine with the
//! paper's runtime pruning hooks: deferred filter pruning, join pruning via
//! sideways information passing, and boundary-driven top-k pruning, over
//! sequential or shared-pool morsel-parallel (virtual-warehouse style)
//! scans. Every scan runs through the async prefetch pipeline in `scan.rs`
//! (up to `ExecConfig::prefetch_depth` partition loads in flight per lane,
//! with completion-time pruning re-checks that cancel in-flight loads
//! free). See `pool.rs` for the worker model and `session.rs` for the
//! multi-query driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod agg;
pub mod config;
pub mod exec;
pub mod pool;
pub mod rows;
pub mod scan;
pub mod session;
pub mod vector;

pub use admission::{Admission, AdmissionRun, TenantId, TenantStats};
pub use config::{
    admission_queue_cap_from_env, batch_rows_from_env, predicate_cache_from_env,
    predicate_cache_mode_from_env, prefetch_depth_from_env, scan_threads_from_env,
    tenant_max_concurrent_from_env, verify_plans_from_env, ExecConfig, PredicateCacheMode,
};
pub use exec::{CacheOutcome, ExecReport, Executor, QueryOutput};
pub use pool::{MorselPool, QueryId, ScanJobSpec, ScanTicket};
pub use rows::RowSet;
pub use scan::{CompiledScan, ScanHooks, ScanRunStats};
pub use session::Session;
pub use snowprune_analyze::{CacheReport, CacheShape};
pub use vector::{Batch, BatchChain};
