//! `snowprune-exec`: a vectorized-ish, pipelining execution engine with the
//! paper's runtime pruning hooks: deferred filter pruning, join pruning via
//! sideways information passing, and boundary-driven top-k pruning, over
//! sequential or parallel (virtual-warehouse style) scans.

pub mod agg;
pub mod config;
pub mod exec;
pub mod rows;
pub mod scan;

pub use config::ExecConfig;
pub use exec::{ExecReport, Executor, QueryOutput};
pub use rows::RowSet;
pub use scan::{CompiledScan, ScanHooks, ScanRunStats};
