//! Execution configuration: which pruning techniques run, and how.

use snowprune_core::filter::FilterPruneConfig;
use snowprune_core::join::SummaryKind;
use snowprune_core::topk::PartitionOrder;
use snowprune_storage::IoCostModel;

/// Knobs controlling the pruning behaviour of the [`crate::Executor`].
/// Every paper experiment toggles some subset of these.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    pub enable_filter_pruning: bool,
    pub enable_limit_pruning: bool,
    pub enable_join_pruning: bool,
    pub enable_topk_pruning: bool,
    /// Partition processing order for top-k scans (§5.3).
    pub topk_order: PartitionOrder,
    /// Upfront boundary initialization from fully-matching partitions (§5.4).
    pub topk_init_boundary: bool,
    /// Build-side summary type for join pruning (§6.1).
    pub join_summary: SummaryKind,
    /// Row-level Bloom filter inside the join operator.
    pub join_bloom: bool,
    /// Worker threads for parallel table scans (the virtual-warehouse
    /// stand-in). 1 = sequential.
    pub workers: usize,
    pub filter: FilterPruneConfig,
    pub io_cost: IoCostModel,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            enable_filter_pruning: true,
            enable_limit_pruning: true,
            enable_join_pruning: true,
            enable_topk_pruning: true,
            topk_order: PartitionOrder::ByBoundary,
            topk_init_boundary: true,
            join_summary: SummaryKind::RangeSet { budget: 128 },
            join_bloom: true,
            workers: 1,
            filter: FilterPruneConfig::default(),
            io_cost: IoCostModel::default(),
        }
    }
}

impl ExecConfig {
    /// Baseline configuration with every pruning technique disabled.
    pub fn no_pruning() -> Self {
        ExecConfig {
            enable_filter_pruning: false,
            enable_limit_pruning: false,
            enable_join_pruning: false,
            enable_topk_pruning: false,
            join_bloom: false,
            ..Default::default()
        }
    }
}
