//! Execution configuration: which pruning techniques run, and how.

use snowprune_core::filter::FilterPruneConfig;
use snowprune_core::join::SummaryKind;
use snowprune_core::topk::PartitionOrder;
use snowprune_storage::IoCostModel;
use snowprune_types::knobs;

/// Knobs controlling the pruning behaviour of the [`crate::Executor`].
/// Every paper experiment toggles some subset of these.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Zone-map filter pruning at scan compilation (§3).
    pub enable_filter_pruning: bool,
    /// Compile-time LIMIT pruning via fully-matching partitions (§4).
    pub enable_limit_pruning: bool,
    /// Join pruning from build-side value summaries (§6).
    pub enable_join_pruning: bool,
    /// Boundary-driven top-k pruning (§5).
    pub enable_topk_pruning: bool,
    /// Partition processing order for top-k scans (§5.3).
    pub topk_order: PartitionOrder,
    /// Upfront boundary initialization from fully-matching partitions (§5.4).
    pub topk_init_boundary: bool,
    /// Build-side summary type for join pruning (§6.1).
    pub join_summary: SummaryKind,
    /// Row-level Bloom filter inside the join operator.
    pub join_bloom: bool,
    /// Scan worker threads (the virtual-warehouse stand-in). 1 = sequential
    /// in-driver scans; > 1 = scans run as morsels on a shared
    /// [`crate::MorselPool`] with this many workers, shared by every query
    /// the executor (or a whole [`crate::Session`]) runs.
    pub scan_threads: usize,
    /// Scan-set entries per morsel handed to a pool worker. Smaller morsels
    /// interleave queries more finely (better fairness, more queue traffic);
    /// larger morsels amortize scheduling.
    pub morsel_partitions: usize,
    /// Partition loads each scan lane keeps in flight ahead of evaluation
    /// (the async prefetch pipeline). 1 = the blocking model (load, then
    /// evaluate, serially); ≥ 2 overlaps simulated object-store GETs with
    /// predicate evaluation, and lets a boundary that tightens mid-flight
    /// *cancel* a load before its I/O cost is ever charged. On pooled
    /// scans a worker claims consecutive morsels of the same lane as one
    /// chain covering the depth, so the window carries across morsel
    /// boundaries and `prefetch_depth > morsel_partitions` overlaps
    /// exactly as deeply as on a sequential scan.
    pub prefetch_depth: usize,
    /// Enable the §8.2 predicate cache: `Session` (and `Executor`) keep a
    /// shared fingerprint-keyed cache of contributing-partition sets and
    /// restrict warm replays to them before morsel generation. Off by
    /// default so counter-exact unit tests and cold-path experiments stay
    /// byte-identical; the differential/bench suites enable it explicitly
    /// or via `SNOWPRUNE_PREDICATE_CACHE`.
    pub predicate_cache: bool,
    /// Entry capacity of the predicate cache (LRU eviction keyed on hit
    /// recency, with a cost-aware tiebreak).
    pub predicate_cache_capacity: usize,
    /// Fingerprint mode of the predicate cache: `Exact` serves only
    /// identical plans; `Shape` additionally falls back to same-shape
    /// entries whose literal ranges subsume the query's (`v >= 50` serving
    /// `v >= 60`). See [`PredicateCacheMode`].
    pub predicate_cache_mode: PredicateCacheMode,
    /// Rows per column-major batch on the vectorized scan spine. Loaded
    /// partitions are chunked into windows of this many rows; predicates
    /// run as selection-vector kernels per window and rows materialize
    /// only at operator boundaries. `1` degenerates to row-at-a-time
    /// delivery (the differential oracle); the default amortizes per-batch
    /// overhead without hurting cache locality. Purely a CPU-side knob:
    /// partitions are still loaded (and I/O charged) whole, so it does not
    /// interact with `prefetch_depth`/`morsel_partitions` I/O capping.
    pub batch_rows: usize,
    /// Queries a single tenant may have in flight at once under admission
    /// control (see [`crate::admission`]). Admitted queries of one tenant
    /// start in arrival order, and a query may not start until every query
    /// `tenant_max_concurrent` positions earlier has finished — the
    /// windowed-FIFO discipline that keeps the adaptive-depth fold
    /// deterministic. Clamped to ≥ 1.
    pub tenant_max_concurrent: usize,
    /// Queries a tenant may hold *queued* behind its in-flight window when
    /// a burst arrives. Arrivals beyond
    /// `tenant_max_concurrent + admission_queue_cap` are rejected with
    /// [`crate::admission::Admission::Rejected`] instead of fanning in
    /// unboundedly.
    pub admission_queue_cap: usize,
    /// Feedback-tuned prefetch depth under admission control: each
    /// tenant's lane starts at `prefetch_depth` and, after every completed
    /// query, doubles/halves from the observed
    /// `io_overlapped_ns / simulated_cpu_ns` ratio, bounded to
    /// `[1, prefetch_max_depth]`. Off by default so every existing
    /// fixed-depth fingerprint stays bit-identical.
    pub adaptive_prefetch: bool,
    /// Upper bound of the adaptive prefetch depth walk.
    pub prefetch_max_depth: usize,
    /// Batch-native joins and aggregations: hash-join probe and GROUP BY
    /// consume column-major [`crate::vector::Batch`]es directly (late
    /// materialization, per-batch partition provenance) instead of
    /// dropping to row-at-a-time sinks at the first join or aggregate.
    /// On by default; the differential suite turns it off to obtain the
    /// row-fallback oracle, and the `joinagg` bench experiment compares
    /// both settings. Results are bit-identical either way.
    pub batch_native: bool,
    /// Run the static plan verifier (`snowprune-analyze`) at admission:
    /// before morsel generation, every plan is schema-resolved and
    /// type-checked and the engine invariants (sort-key validity, join-key
    /// comparability, aggregate input typing) are enforced. Plans with any
    /// error-severity diagnostic are rejected with
    /// [`snowprune_types::Error::PlanRejected`]. On by default — the
    /// analyzer is sound (zero false positives on every valid plan), so
    /// the only reason to disable it (`SNOWPRUNE_VERIFY_PLANS=0`) is to
    /// measure its admission-time cost.
    pub verify_plans: bool,
    /// Zone-map filter pruning knobs (§3).
    pub filter: FilterPruneConfig,
    /// Simulated object-store cost model for I/O accounting.
    pub io_cost: IoCostModel,
}

/// How the §8.2 predicate cache fingerprints plans at admission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PredicateCacheMode {
    /// Plans are keyed by exact fingerprint (literals included): an entry
    /// for `v >= 50` can only serve `v >= 50`.
    #[default]
    Exact,
    /// Exact lookup first, then fall back to entries with the same
    /// literal-abstracted shape whose recorded literal ranges *subsume*
    /// the query's — a `v >= 50` filter entry serves `v >= 60`, a
    /// `BETWEEN 10 AND 90` entry serves `BETWEEN 20 AND 80`, and a top-k
    /// entry serves the same predicate at a smaller `k`. Every shape hit
    /// replays a sound superset of the query's contributing partitions.
    Shape,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            enable_filter_pruning: true,
            enable_limit_pruning: true,
            enable_join_pruning: true,
            enable_topk_pruning: true,
            topk_order: PartitionOrder::ByBoundary,
            topk_init_boundary: true,
            join_summary: SummaryKind::RangeSet { budget: 128 },
            join_bloom: true,
            scan_threads: 1,
            morsel_partitions: 4,
            prefetch_depth: 2,
            predicate_cache: false,
            predicate_cache_capacity: 256,
            predicate_cache_mode: PredicateCacheMode::Exact,
            tenant_max_concurrent: 1,
            admission_queue_cap: 16,
            adaptive_prefetch: false,
            prefetch_max_depth: 8,
            batch_rows: 1024,
            batch_native: true,
            verify_plans: true,
            filter: FilterPruneConfig::default(),
            io_cost: IoCostModel::default(),
        }
    }
}

impl ExecConfig {
    /// Baseline configuration with every pruning technique disabled.
    pub fn no_pruning() -> Self {
        ExecConfig {
            enable_filter_pruning: false,
            enable_limit_pruning: false,
            enable_join_pruning: false,
            enable_topk_pruning: false,
            join_bloom: false,
            ..Default::default()
        }
    }

    /// Builder-style override for the scan worker count (clamped to ≥ 1).
    pub fn with_scan_threads(mut self, n: usize) -> Self {
        self.scan_threads = n.max(1);
        self
    }

    /// Builder-style override for the prefetch depth (clamped to ≥ 1).
    pub fn with_prefetch_depth(mut self, n: usize) -> Self {
        self.prefetch_depth = n.max(1);
        self
    }

    /// Builder-style toggle for the §8.2 predicate cache.
    pub fn with_predicate_cache(mut self, on: bool) -> Self {
        self.predicate_cache = on;
        self
    }

    /// Builder-style override for the predicate-cache fingerprint mode.
    pub fn with_predicate_cache_mode(mut self, mode: PredicateCacheMode) -> Self {
        self.predicate_cache_mode = mode;
        self
    }

    /// Builder-style override for the vectorized batch size (clamped to ≥ 1).
    pub fn with_batch_rows(mut self, n: usize) -> Self {
        self.batch_rows = n.max(1);
        self
    }

    /// Builder-style override for the per-tenant in-flight cap (clamped
    /// to ≥ 1).
    pub fn with_tenant_max_concurrent(mut self, n: usize) -> Self {
        self.tenant_max_concurrent = n.max(1);
        self
    }

    /// Builder-style override for the per-tenant admission queue capacity.
    pub fn with_admission_queue_cap(mut self, n: usize) -> Self {
        self.admission_queue_cap = n;
        self
    }

    /// Builder-style toggle for feedback-tuned prefetch depth under
    /// admission control.
    pub fn with_adaptive_prefetch(mut self, on: bool) -> Self {
        self.adaptive_prefetch = on;
        self
    }

    /// Builder-style override for the adaptive-depth upper bound (clamped
    /// to ≥ 1).
    pub fn with_prefetch_max_depth(mut self, n: usize) -> Self {
        self.prefetch_max_depth = n.max(1);
        self
    }

    /// Builder-style toggle for batch-native joins and aggregations.
    /// `false` forces the row-at-a-time fallback operators — the
    /// differential oracle the batch-native path must match bit-for-bit.
    pub fn with_batch_native(mut self, on: bool) -> Self {
        self.batch_native = on;
        self
    }

    /// Builder-style toggle for the admission-time static plan verifier.
    pub fn with_verify_plans(mut self, on: bool) -> Self {
        self.verify_plans = on;
        self
    }
}

// Every reader below goes through the [`snowprune_types::knobs`] registry
// — the single env-var choke point enforced by `cargo xtask lint`. The
// registry panics on malformed values with the variable name and raw value
// in the message: a typo'd CI matrix entry (`SNOWPRUNE_PREFETCH_DEPTH=abc`)
// used to silently run defaults and green-light a sweep that never
// happened. Unset variables still return `None` — absence is the
// documented "use the default" signal.

/// Scan-thread override from the `SNOWPRUNE_SCAN_THREADS` environment
/// variable. The CI thread-count matrix uses this to run the differential
/// and stress suites at 1, 4, and 8 workers without code changes; defaults
/// stay env-independent so counter-exact unit tests are unaffected.
pub fn scan_threads_from_env() -> Option<usize> {
    knobs::usize_min1("SNOWPRUNE_SCAN_THREADS")
}

/// Prefetch-depth override from the `SNOWPRUNE_PREFETCH_DEPTH` environment
/// variable. Like [`scan_threads_from_env`], this is applied explicitly by
/// the differential/stress suites (CI matrix runs depths 1 and 8), never
/// implicitly by `ExecConfig::default()`.
pub fn prefetch_depth_from_env() -> Option<usize> {
    knobs::usize_min1("SNOWPRUNE_PREFETCH_DEPTH")
}

/// Predicate-cache override from the `SNOWPRUNE_PREDICATE_CACHE`
/// environment variable (`1`/`0`, `true`/`false`, `on`/`off`). Applied
/// explicitly by the differential cache leg (the CI matrix runs both
/// settings), never implicitly by `ExecConfig::default()`.
///
/// # Panics
/// On a malformed value (anything other than the accepted spellings), so a
/// typo'd CI matrix fails loudly instead of silently running defaults.
pub fn predicate_cache_from_env() -> Option<bool> {
    knobs::toggle("SNOWPRUNE_PREDICATE_CACHE")
}

/// Predicate-cache fingerprint-mode override from the
/// `SNOWPRUNE_PREDICATE_CACHE_MODE` environment variable (`exact` or
/// `shape`). Applied explicitly by the differential cache leg (the CI
/// matrix sweeps both modes), never implicitly by `ExecConfig::default()`.
///
/// # Panics
/// On a malformed value (anything other than `exact`/`shape`).
pub fn predicate_cache_mode_from_env() -> Option<PredicateCacheMode> {
    match knobs::choice("SNOWPRUNE_PREDICATE_CACHE_MODE", &["exact", "shape"])? {
        "exact" => Some(PredicateCacheMode::Exact),
        "shape" => Some(PredicateCacheMode::Shape),
        // PANIC-OK: `choice` only returns variants from the registry entry.
        other => unreachable!("choice() returned unregistered variant {other:?}"),
    }
}

/// Batch-size override from the `SNOWPRUNE_BATCH_ROWS` environment
/// variable. Like the other env knobs, this is applied explicitly by the
/// differential/stress suites (the CI matrix runs 1 and 1024), never
/// implicitly by `ExecConfig::default()`.
pub fn batch_rows_from_env() -> Option<usize> {
    knobs::usize_min1("SNOWPRUNE_BATCH_ROWS")
}

/// Per-tenant in-flight cap override from the
/// `SNOWPRUNE_TENANT_MAX_CONCURRENT` environment variable. Applied
/// explicitly by the admission stress/differential legs (the CI pool
/// matrix sweeps it), never implicitly by `ExecConfig::default()`.
pub fn tenant_max_concurrent_from_env() -> Option<usize> {
    knobs::usize_min1("SNOWPRUNE_TENANT_MAX_CONCURRENT")
}

/// Admission queue-capacity override from the
/// `SNOWPRUNE_ADMISSION_QUEUE_CAP` environment variable. Unlike the other
/// numeric knobs, `0` is meaningful (reject anything beyond the in-flight
/// window), so only non-numeric values are malformed.
pub fn admission_queue_cap_from_env() -> Option<usize> {
    knobs::usize_any("SNOWPRUNE_ADMISSION_QUEUE_CAP")
}

/// Static-plan-verifier override from the `SNOWPRUNE_VERIFY_PLANS`
/// environment variable (`1`/`0`, `true`/`false`, `on`/`off`). Unlike the
/// other knobs the verifier is **on** by default; the env var exists to
/// switch it off for admission-cost measurements.
///
/// # Panics
/// On a malformed value (anything other than the accepted spellings).
pub fn verify_plans_from_env() -> Option<bool> {
    knobs::toggle("SNOWPRUNE_VERIFY_PLANS")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// `std::env` is process-global; serialize the tests that mutate it.
    fn env_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn with_var<R>(var: &str, value: Option<&str>, f: impl FnOnce() -> R) -> R {
        let _guard = env_lock();
        match value {
            Some(v) => std::env::set_var(var, v),
            None => std::env::remove_var(var),
        }
        let out = f();
        std::env::remove_var(var);
        out
    }

    fn panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
        std::panic::catch_unwind(f).is_err()
    }

    #[test]
    fn unset_env_knobs_mean_defaults() {
        with_var("SNOWPRUNE_PREFETCH_DEPTH", None, || {
            assert_eq!(prefetch_depth_from_env(), None);
        });
        with_var("SNOWPRUNE_PREDICATE_CACHE", None, || {
            assert_eq!(predicate_cache_from_env(), None);
        });
    }

    #[test]
    fn well_formed_env_knobs_parse() {
        with_var("SNOWPRUNE_PREFETCH_DEPTH", Some(" 8 "), || {
            assert_eq!(prefetch_depth_from_env(), Some(8));
        });
        with_var("SNOWPRUNE_SCAN_THREADS", Some("4"), || {
            assert_eq!(scan_threads_from_env(), Some(4));
        });
        with_var("SNOWPRUNE_TENANT_MAX_CONCURRENT", Some("2"), || {
            assert_eq!(tenant_max_concurrent_from_env(), Some(2));
        });
        with_var("SNOWPRUNE_ADMISSION_QUEUE_CAP", Some("0"), || {
            assert_eq!(admission_queue_cap_from_env(), Some(0));
        });
        with_var("SNOWPRUNE_PREDICATE_CACHE", Some("on"), || {
            assert_eq!(predicate_cache_from_env(), Some(true));
        });
        with_var("SNOWPRUNE_PREDICATE_CACHE_MODE", Some("Shape"), || {
            assert_eq!(
                predicate_cache_mode_from_env(),
                Some(PredicateCacheMode::Shape)
            );
        });
    }

    #[test]
    fn malformed_env_knobs_panic_with_var_and_value() {
        let msg = |f: Box<dyn FnOnce() + std::panic::UnwindSafe>| -> String {
            match std::panic::catch_unwind(f) {
                Err(e) => e
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_else(|| "non-string panic".into()),
                Ok(()) => panic!("expected a panic"),
            }
        };
        with_var("SNOWPRUNE_PREFETCH_DEPTH", Some("abc"), || {
            let m = msg(Box::new(|| {
                prefetch_depth_from_env();
            }));
            assert!(m.contains("SNOWPRUNE_PREFETCH_DEPTH"), "{m}");
            assert!(m.contains("abc"), "{m}");
        });
        with_var("SNOWPRUNE_SCAN_THREADS", Some("0"), || {
            assert!(panics(|| {
                scan_threads_from_env();
            }));
        });
        with_var("SNOWPRUNE_BATCH_ROWS", Some("-3"), || {
            assert!(panics(|| {
                batch_rows_from_env();
            }));
        });
        with_var("SNOWPRUNE_ADMISSION_QUEUE_CAP", Some("lots"), || {
            assert!(panics(|| {
                admission_queue_cap_from_env();
            }));
        });
        with_var("SNOWPRUNE_PREDICATE_CACHE", Some("maybe"), || {
            let m = msg(Box::new(|| {
                predicate_cache_from_env();
            }));
            assert!(m.contains("SNOWPRUNE_PREDICATE_CACHE"), "{m}");
            assert!(m.contains("maybe"), "{m}");
        });
        with_var("SNOWPRUNE_PREDICATE_CACHE_MODE", Some("fuzzy"), || {
            assert!(panics(|| {
                predicate_cache_mode_from_env();
            }));
        });
    }
}
