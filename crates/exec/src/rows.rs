//! Materialized row sets flowing between (non-pipelined) operators.

use snowprune_storage::Schema;
use snowprune_types::Value;

/// A materialized intermediate result.
#[derive(Clone, Debug, PartialEq)]
pub struct RowSet {
    /// Column layout of the rows.
    pub schema: Schema,
    /// The rows, each `schema.len()` values wide.
    pub rows: Vec<Vec<Value>>,
}

impl RowSet {
    /// A row set with no rows.
    pub fn empty(schema: Schema) -> Self {
        RowSet {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column values by name.
    pub fn column(&self, name: &str) -> snowprune_types::Result<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Sort rows by a column (for deterministic test comparisons).
    pub fn sorted_by(&self, name: &str, desc: bool) -> snowprune_types::Result<RowSet> {
        let idx = self.schema.index_of(name)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            let ord = a[idx].total_ord_cmp(&b[idx]);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(RowSet {
            schema: self.schema.clone(),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_storage::Field;
    use snowprune_types::ScalarType;

    #[test]
    fn column_extraction_and_sorting() {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let rs = RowSet {
            schema,
            rows: vec![
                vec![Value::Int(3)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        };
        assert_eq!(
            rs.sorted_by("x", false).unwrap().column("x").unwrap(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        assert!(rs.column("missing").is_err());
    }
}
