//! The shared, morsel-driven scan worker pool — the virtual-warehouse
//! stand-in (§2 "Virtual Warehouses").
//!
//! A fixed set of worker threads pulls *morsels* — `(query, contiguous
//! scan-set range)` units — from a global injector queue organized as
//! per-query FIFO lanes. The pop rule is round-robin over lanes, so N
//! concurrent queries share `ExecConfig::scan_threads` workers instead of
//! spinning up N×threads, and no single query can starve the others.
//!
//! Two details model the paper's distributed execution faithfully:
//!
//! * **Pre-assignment (§4.4).** The first `min(workers, partitions)`
//!   partitions of every scan are processed without consulting the
//!   early-stop signal (spread across the leading morsels), mirroring how
//!   a scan set is distributed to n workers before any LIMIT coordination
//!   — which is why, without LIMIT pruning, n workers read at least n
//!   partitions even when one would do.
//! * **Stale boundaries stay sound.** Workers consult each query's top-k
//!   [`Boundary`] between partitions. Because boundaries only tighten
//!   (see [`snowprune_core::topk::boundary_allows_skip`]), a worker acting
//!   on a stale snapshot may under-prune but never over-prune, so morsels
//!   of different queries can interleave arbitrarily.
//!
//! The queue internals use `std::sync` primitives directly (the vendored
//! `parking_lot` shim deliberately exposes no `Condvar`); poison is
//! cleared, matching the shim's non-poisoning semantics.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// STD-SYNC-OK: the pool *wants* poisoning semantics — a worker panic must
// propagate to every thread blocked on the job's condvar, which
// parking_lot's non-poisoning locks cannot signal.
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use snowprune_core::filter::FilterPruner;
use snowprune_core::topk::Boundary;
use snowprune_storage::{IoCostModel, IoStats};

use crate::scan::{CompiledScan, ScanHooks, ScanPipeline, ScanRunStats};
use crate::vector::Batch;

/// Identifies one query's FIFO lane in the injector queue.
pub type QueryId = u64;

/// Per-batch output callback: `(morsel_index, batch)`. The morsel index
/// lets callers reassemble output in scan-set order regardless of which
/// worker ran which morsel; the batch carries its partition (provenance)
/// and the selected rows of one `batch_rows` window.
pub type PartitionSink = dyn Fn(usize, Batch) + Send + Sync;

/// Early-stop signal (LIMIT-style). Checked before each partition except
/// the scan's pre-assigned leading partitions (§4.4).
pub type StopFn = dyn Fn() -> bool + Send + Sync;

/// Invoked once per morsel after its last partition (processed or
/// stop-skipped); used for deterministic prefix accounting.
pub type MorselDoneFn = dyn Fn(usize) + Send + Sync;

/// Everything the pool needs to run one scan as morsels.
pub struct ScanJobSpec {
    /// The compiled scan (snapshot + pruned scan set) to execute.
    pub scan: CompiledScan,
    /// Per-query I/O counters (clones share counters, so per-query tallies
    /// stay race-free even when workers of many queries interleave).
    pub io: IoStats,
    /// Simulated object-store cost model charged per load.
    pub io_cost: IoCostModel,
    /// Top-k boundary hook and the ORDER BY column index.
    pub boundary: Option<(Arc<Boundary>, usize)>,
    /// Runtime pruner for deferred-filter partitions (§3.2).
    pub runtime_pruner: Option<FilterPruner>,
    /// Scan-set entries per morsel (clamped to ≥ 1).
    pub morsel_partitions: usize,
    /// Partition loads each worker keeps in flight per lane (clamped to
    /// ≥ 1; 1 = blocking). See [`crate::ExecConfig::prefetch_depth`].
    pub prefetch_depth: usize,
    /// Rows per column-major batch delivered to the sink (clamped to ≥ 1;
    /// `usize::MAX` = whole-partition batches). See
    /// [`crate::ExecConfig::batch_rows`].
    pub batch_rows: usize,
    /// Per-batch output callback (receives the morsel index).
    pub sink: Box<PartitionSink>,
    /// Early-stop signal checked between partitions (§4.4 pre-assigned
    /// partitions excepted).
    pub stop: Box<StopFn>,
    /// Optional per-morsel completion callback (LIMIT prefix accounting).
    pub on_morsel_done: Option<Box<MorselDoneFn>>,
}

struct ScanJob {
    scan: CompiledScan,
    io: IoStats,
    io_cost: IoCostModel,
    boundary: Option<(Arc<Boundary>, usize)>,
    runtime_pruner: Option<parking_lot::Mutex<FilterPruner>>,
    prefetch_depth: usize,
    batch_rows: usize,
    sink: Box<PartitionSink>,
    stop: Box<StopFn>,
    on_morsel_done: Option<Box<MorselDoneFn>>,
    progress: Arc<JobProgress>,
}

/// Shared completion state + aggregated counters for one submitted scan.
struct JobProgress {
    total_morsels: usize,
    completed: Mutex<usize>,
    done_cv: Condvar,
    /// Set when a worker panicked inside this job; re-raised by `wait()`.
    panicked: AtomicBool,
    /// Per-morsel [`ScanRunStats`] merged in as each morsel finishes; read
    /// by `wait()` only after every morsel has drained.
    totals: parking_lot::Mutex<ScanRunStats>,
}

impl JobProgress {
    fn new(total_morsels: usize) -> Self {
        JobProgress {
            total_morsels,
            completed: Mutex::new(0),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
            totals: parking_lot::Mutex::new(ScanRunStats::default()),
        }
    }

    fn stats(&self) -> ScanRunStats {
        *self.totals.lock()
    }
}

/// Handle returned by [`MorselPool::submit`]; [`ScanTicket::wait`] blocks
/// until every morsel of the scan has drained.
pub struct ScanTicket {
    progress: Arc<JobProgress>,
}

impl ScanTicket {
    /// Block until every morsel has drained; returns the merged counters.
    /// Re-raises a panic from any worker that executed this job's morsels.
    pub fn wait(self) -> ScanRunStats {
        let mut done = lock(&self.progress.completed);
        while *done < self.progress.total_morsels {
            done = self
                .progress
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(done);
        if self.progress.panicked.load(Ordering::Acquire) {
            // PANIC-OK: deliberate panic propagation from a worker thread.
            panic!("a scan worker panicked while executing this job");
        }
        self.progress.stats()
    }
}

/// One unit of scan work: a contiguous range of scan-set entries.
struct Morsel {
    job: Arc<ScanJob>,
    index: usize,
    range: Range<usize>,
    /// §4.4 pre-assignment: this many leading partitions of the range are
    /// processed without consulting the early-stop signal. Across all
    /// morsels of a job, exactly the first `min(workers, partitions)`
    /// partitions of the scan set are unconditional, so the "n workers
    /// read at least n partitions" effect holds at any morsel size.
    unconditional: usize,
}

struct Lane {
    query: QueryId,
    morsels: VecDeque<Morsel>,
}

#[derive(Default)]
struct Injector {
    lanes: VecDeque<Lane>,
}

impl Injector {
    /// Round-robin pop: take the front lane's next morsel, rotating the
    /// lane to the back if it still has work (per-query FIFO, cross-query
    /// fairness).
    ///
    /// Fairness audit: the pop rule has no fixed starting cursor to bias —
    /// the *lane itself* rotates to the back of the lane queue on every
    /// pop, and a newly submitted lane joins at the back, so under
    /// contention every waiting lane is served exactly once per round
    /// regardless of lane id or submission order. The regression test
    /// `eight_contending_lanes_share_one_worker_fairly` pins the resulting
    /// max wait-gap.
    fn pop(&mut self) -> Option<Morsel> {
        let mut lane = self.lanes.pop_front()?;
        let morsel = lane.morsels.pop_front();
        if !lane.morsels.is_empty() {
            self.lanes.push_back(lane);
        }
        morsel
    }

    /// Round-robin pop of a *chain*: the front lane's next morsel plus as
    /// many consecutive same-job successors as it takes to cover the
    /// job's `prefetch_depth` in scan-set entries. The worker runs the
    /// chain through one shared [`ScanPipeline`], so a prefetch window
    /// deeper than one morsel actually spans morsel boundaries instead of
    /// draining at each one (`prefetch_depth` used to be silently capped
    /// at `morsel_partitions`). Chain boundaries depend only on the lane's
    /// FIFO content — all of a job's morsels are enqueued atomically at
    /// submit — so they are deterministic under any worker interleaving,
    /// which keeps the virtual-clock overlap accounting bit-identical
    /// across runs. With `prefetch_depth <= morsel_partitions` every chain
    /// is a single morsel and scheduling is unchanged.
    fn pop_chain(&mut self) -> Option<Vec<Morsel>> {
        let mut lane = self.lanes.pop_front()?;
        let first = lane.morsels.pop_front()?;
        let depth = first.job.prefetch_depth;
        let mut entries = first.range.len();
        let mut chain = vec![first];
        while entries < depth {
            match lane.morsels.front() {
                Some(next) if Arc::ptr_eq(&next.job, &chain[0].job) => {
                    // PANIC-OK: the queue is locked; front() just returned Some.
                    let m = lane.morsels.pop_front().expect("front just observed");
                    entries += m.range.len();
                    chain.push(m);
                }
                _ => break,
            }
        }
        if !lane.morsels.is_empty() {
            self.lanes.push_back(lane);
        }
        Some(chain)
    }

    fn push(&mut self, query: QueryId, morsels: VecDeque<Morsel>) {
        if morsels.is_empty() {
            return;
        }
        if let Some(lane) = self.lanes.iter_mut().find(|l| l.query == query) {
            lane.morsels.extend(morsels);
        } else {
            self.lanes.push_back(Lane { query, morsels });
        }
    }
}

struct PoolShared {
    injector: Mutex<Injector>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared worker pool. Create once (per [`crate::Session`], or
/// implicitly per [`crate::Executor`] when `scan_threads > 1`) and share
/// the `Arc` across every query that should draw from the same workers.
pub struct MorselPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    next_lane: AtomicU64,
}

impl MorselPool {
    /// Spawn a pool of `workers` scan threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Arc<MorselPool> {
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(Injector::default()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("snowprune-scan-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // PANIC-OK: thread spawn failure at startup is unrecoverable.
                    .expect("spawn scan worker")
            })
            .collect();
        Arc::new(MorselPool {
            shared,
            workers: handles,
            next_lane: AtomicU64::new(0),
        })
    }

    /// Number of worker threads serving this pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Allocate a fresh query lane id (one per executed query).
    pub fn next_lane(&self) -> QueryId {
        self.next_lane.fetch_add(1, Ordering::Relaxed)
    }

    /// Split the scan into morsels, enqueue them on `lane`, and return a
    /// ticket to wait on. An empty scan set completes immediately.
    pub fn submit(&self, lane: QueryId, spec: ScanJobSpec) -> ScanTicket {
        let morsel_partitions = spec.morsel_partitions.max(1);
        let entries = spec.scan.scan_set.len();
        let total_morsels = entries.div_ceil(morsel_partitions);
        let progress = Arc::new(JobProgress::new(total_morsels));
        if total_morsels == 0 {
            // Job (and the sink it owns) drops here; nothing to run.
            return ScanTicket { progress };
        }
        let job = Arc::new(ScanJob {
            scan: spec.scan,
            io: spec.io,
            io_cost: spec.io_cost,
            boundary: spec.boundary,
            runtime_pruner: spec.runtime_pruner.map(parking_lot::Mutex::new),
            prefetch_depth: spec.prefetch_depth.max(1),
            batch_rows: spec.batch_rows.max(1),
            sink: spec.sink,
            stop: spec.stop,
            on_morsel_done: spec.on_morsel_done,
            progress: Arc::clone(&progress),
        });
        let preassign_parts = self.worker_count().min(entries);
        let morsels: VecDeque<Morsel> = (0..total_morsels)
            .map(|index| {
                let start = index * morsel_partitions;
                let range = start..((index + 1) * morsel_partitions).min(entries);
                let unconditional = preassign_parts.saturating_sub(start).min(range.len());
                Morsel {
                    job: Arc::clone(&job),
                    index,
                    range,
                    unconditional,
                }
            })
            .collect();
        drop(job);
        {
            let mut injector = lock(&self.shared.injector);
            injector.push(lane, morsels);
        }
        self.shared.work_cv.notify_all();
        ScanTicket { progress }
    }
}

impl Drop for MorselPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers exit at the shutdown check without draining the queue.
        // Complete any stranded morsels (unexecuted) so a ScanTicket held
        // past the pool's lifetime unblocks instead of waiting forever.
        let mut injector = lock(&self.shared.injector);
        while let Some(morsel) = injector.pop() {
            complete_morsel(&morsel);
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut guard = lock(&shared.injector);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(chain) = guard.pop_chain() {
            drop(guard);
            // A panicking sink/predicate must not hang the driver in
            // `ScanTicket::wait` or kill the worker: record it, complete
            // every claimed morsel, and let `wait()` re-raise (matching
            // the panic propagation of the old scoped-thread model).
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_chain(&chain))).is_err()
            {
                chain[0]
                    .job
                    .progress
                    .panicked
                    .store(true, Ordering::Release);
            }
            for morsel in &chain {
                complete_morsel(morsel);
            }
            // Drop the chain — and with it, possibly the job's last Arc
            // (sink closure, channel senders, CompiledScan) — before
            // re-contending the pool-wide injector lock.
            drop(chain);
            guard = lock(&shared.injector);
        } else {
            guard = shared
                .work_cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Execute a chain of same-job morsels through ONE shared load/evaluate
/// prefetch pipeline — identical per-entry semantics to the sequential
/// `stream_scan`, with §4.4 pre-assignment and the job's stop signal
/// wired in. Because the [`ScanPipeline`] (and its `AsyncLake`) persists
/// across the chained morsels, in-flight loads submitted under one morsel
/// keep overlapping with evaluation of the next — this is what lets
/// `prefetch_depth > morsel_partitions` actually deepen the window
/// instead of draining at every morsel boundary. Counters accumulate
/// locally and merge into the job's totals once the whole chain finishes
/// (readers only look after `wait()`); `on_morsel_done` still fires once
/// per morsel, in index order, after that morsel's entries have all been
/// submitted-or-skipped and completed.
fn run_chain(chain: &[Morsel]) {
    let job = &chain[0].job;
    let hooks = ScanHooks {
        boundary: job.boundary.as_ref().map(|(b, col)| (b, *col)),
        runtime_pruner: job.runtime_pruner.as_ref(),
        prefetch_depth: job.prefetch_depth,
        batch_rows: job.batch_rows,
    };
    let mut stats = ScanRunStats::default();
    let mut pipeline = ScanPipeline::new(&job.scan, &job.io, &job.io_cost);
    let mut sink = |tag: usize, batch: Batch| {
        (job.sink)(tag, batch);
        std::ops::ControlFlow::Continue(())
    };
    for morsel in chain {
        pipeline.run_slice(
            &job.scan,
            morsel.range.clone(),
            morsel.unconditional,
            morsel.index,
            &hooks,
            &|| (job.stop)(),
            &mut stats,
            &mut sink,
        );
    }
    pipeline.drain(&job.scan, &hooks, &|| (job.stop)(), &mut stats, &mut sink);
    pipeline.finish();
    job.progress.totals.lock().merge(&stats);
    if let Some(done) = &job.on_morsel_done {
        for morsel in chain {
            done(morsel.index);
        }
    }
}

fn complete_morsel(morsel: &Morsel) {
    let p = &morsel.job.progress;
    let mut done = lock(&p.completed);
    *done += 1;
    if *done >= p.total_morsels {
        p.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_core::filter::FilterPruneConfig;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Layout, Schema, Table, TableBuilder};
    use snowprune_types::{ScalarType, Value};

    fn table(rows: i64) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(10)
            .layout(Layout::ClusterBy(vec!["x".into()]));
        for i in 0..rows {
            b.push_row(vec![Value::Int(i)]);
        }
        Arc::new(b.build())
    }

    fn compile(t: &Arc<Table>, io: &IoStats, pred: Option<&snowprune_expr::Expr>) -> CompiledScan {
        CompiledScan::compile(
            "t",
            Arc::clone(t),
            pred,
            true,
            &FilterPruneConfig::default(),
            io,
            &IoCostModel::free(),
        )
        .unwrap()
    }

    fn spec_collecting(
        scan: CompiledScan,
        io: &IoStats,
        rows: &Arc<parking_lot::Mutex<Vec<(usize, Value)>>>,
    ) -> ScanJobSpec {
        let rows = Arc::clone(rows);
        ScanJobSpec {
            scan,
            io: io.clone(),
            io_cost: IoCostModel::free(),
            boundary: None,
            runtime_pruner: None,
            morsel_partitions: 3,
            prefetch_depth: 2,
            batch_rows: usize::MAX,
            sink: Box::new(move |mi, batch| {
                let mut g = rows.lock();
                for i in batch.sel.iter() {
                    g.push((mi, batch.part.row(i)[0].clone()));
                }
            }),
            stop: Box::new(|| false),
            on_morsel_done: None,
        }
    }

    #[test]
    fn pool_runs_all_morsels_and_counts() {
        let t = table(200);
        let io = IoStats::new();
        let scan = compile(&t, &io, Some(&col("x").lt(lit(90i64))));
        let pool = MorselPool::new(4);
        let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let ticket = pool.submit(pool.next_lane(), spec_collecting(scan, &io, &rows));
        let stats = ticket.wait();
        assert_eq!(stats.loaded, 9);
        assert_eq!(stats.rows_emitted, 90);
        assert_eq!(rows.lock().len(), 90);
    }

    #[test]
    fn empty_scan_set_completes_immediately() {
        let t = table(50);
        let io = IoStats::new();
        let scan = compile(&t, &io, Some(&col("x").lt(lit(-1i64))));
        assert!(scan.scan_set.is_empty());
        let pool = MorselPool::new(2);
        let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let ticket = pool.submit(pool.next_lane(), spec_collecting(scan, &io, &rows));
        let stats = ticket.wait();
        assert_eq!(stats.considered, 0);
        assert!(rows.lock().is_empty());
    }

    #[test]
    fn concurrent_lanes_share_workers_without_crosstalk() {
        let t = table(300);
        let pool = MorselPool::new(2);
        let ios: Vec<IoStats> = (0..8).map(|_| IoStats::new()).collect();
        let tickets: Vec<ScanTicket> = ios
            .iter()
            .map(|io| {
                let scan = compile(&t, io, None);
                let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
                pool.submit(pool.next_lane(), spec_collecting(scan, io, &rows))
            })
            .collect();
        for (ticket, io) in tickets.into_iter().zip(&ios) {
            let stats = ticket.wait();
            assert_eq!(stats.loaded, 30);
            // Per-query IoStats see exactly their own query's loads.
            assert_eq!(io.snapshot().partitions_loaded, 30);
        }
    }

    #[test]
    fn morsel_order_reassembles_scan_set_order() {
        let t = table(200);
        let io = IoStats::new();
        let scan = compile(&t, &io, None);
        let pool = MorselPool::new(4);
        let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
        pool.submit(pool.next_lane(), spec_collecting(scan, &io, &rows))
            .wait();
        let mut got = rows.lock().clone();
        // Sorting by (morsel index, value) must reproduce scan-set order —
        // i.e. the fully sequential read — exactly.
        got.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_ord_cmp(&b.1)));
        let expect: Vec<Value> = (0..200i64).map(Value::Int).collect();
        assert_eq!(got.into_iter().map(|(_, v)| v).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn dropping_pool_unblocks_outstanding_tickets() {
        let t = table(200);
        let io = IoStats::new();
        let pool = MorselPool::new(1);
        // Park the single worker on a job that waits until shutdown begins,
        // so a second job's morsels are still queued when the pool drops.
        let gate = Arc::new(AtomicBool::new(false));
        let mut blocker = spec_collecting(compile(&t, &io, None), &io, &Arc::default());
        let gate_in_sink = Arc::clone(&gate);
        blocker.sink = Box::new(move |_, _| {
            while !gate_in_sink.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        });
        let t1 = pool.submit(pool.next_lane(), blocker);
        let t2 = pool.submit(
            pool.next_lane(),
            spec_collecting(compile(&t, &io, None), &io, &Arc::default()),
        );
        gate.store(true, Ordering::Release);
        drop(pool);
        // Both tickets resolve: executed morsels report stats, stranded
        // ones are completed-without-running rather than leaking a hang.
        let _ = t1.wait();
        let s2 = t2.wait();
        assert!(s2.considered <= 20);
    }

    #[test]
    fn worker_panic_surfaces_at_wait_and_pool_survives() {
        let t = table(100);
        let io = IoStats::new();
        let pool = MorselPool::new(2);
        let mut spec = spec_collecting(compile(&t, &io, None), &io, &Arc::default());
        spec.sink = Box::new(|_, _| panic!("boom"));
        let ticket = pool.submit(pool.next_lane(), spec);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait())).is_err());
        // The workers survived the panic and keep serving later jobs.
        let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let stats = pool
            .submit(
                pool.next_lane(),
                spec_collecting(compile(&t, &io, None), &io, &rows),
            )
            .wait();
        assert_eq!(stats.loaded, 10);
    }

    #[test]
    fn preassigned_partitions_ignore_stop() {
        let t = table(200); // 20 partitions, morsels of 3 ⇒ 7 morsels
        let io = IoStats::new();
        let scan = compile(&t, &io, None);
        let pool = MorselPool::new(4);
        let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut spec = spec_collecting(scan, &io, &rows);
        spec.stop = Box::new(|| true); // stop signalled from the very start
        let stats = pool.submit(pool.next_lane(), spec).wait();
        // Exactly the first min(4 workers, 20 partitions) partitions are
        // read unconditionally — independent of morsel size — and
        // everything else honours the stop signal.
        assert_eq!(stats.loaded, 4, "§4.4: n workers read n partitions");
    }

    #[test]
    fn preassigned_partitions_are_never_cancelled() {
        // Even with a deep prefetch pipeline and the stop signal raised
        // from the start, the §4.4 pre-assigned partitions complete —
        // they are neither stop-skipped at submit nor cancelled in flight.
        let t = table(200);
        let io = IoStats::new();
        let scan = compile(&t, &io, None);
        let pool = MorselPool::new(4);
        let mut spec = spec_collecting(scan, &io, &Arc::default());
        spec.prefetch_depth = 8;
        spec.stop = Box::new(|| true);
        let stats = pool.submit(pool.next_lane(), spec).wait();
        assert_eq!(stats.loaded, 4);
        assert_eq!(stats.cancelled_by_stop, 0, "pre-assigned never cancelled");
        assert_eq!(io.snapshot().partitions_loaded, 4);
    }

    #[test]
    fn prefetch_depth_deeper_than_morsel_still_overlaps() {
        // Regression: pooled scans used to drain the prefetch pipeline at
        // every morsel boundary, silently capping the effective in-flight
        // depth at `morsel_partitions` — depth 8 over morsels of 4 produced
        // exactly the same `io_overlapped_ns` as depth 4. Chain claiming
        // carries the window across consecutive morsels of the lane, so a
        // deeper window now hides strictly more I/O while loading exactly
        // the same bytes.
        let t = table(200); // 20 partitions of 10 rows
        let cost = IoCostModel {
            latency_ns_per_request: 10_000,
            throughput_bytes_per_sec: u64::MAX,
            metadata_ns_per_read: 0,
            eval_ns_per_row: 1_000, // per-partition eval == per-load latency
        };
        let run = |depth: usize| {
            let io = IoStats::new();
            let scan = compile(&t, &io, None);
            let pool = MorselPool::new(4);
            let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut spec = spec_collecting(scan, &io, &rows);
            spec.io_cost = cost;
            spec.morsel_partitions = 4;
            spec.prefetch_depth = depth;
            let stats = pool.submit(pool.next_lane(), spec).wait();
            let emitted = rows.lock().len();
            (stats, io.snapshot(), emitted)
        };
        let (s4, io4, n4) = run(4);
        let (s8, io8, n8) = run(8);
        assert_eq!(s4, s8, "depth must never change which partitions load");
        assert_eq!(n4, n8);
        assert_eq!(io4.bytes_loaded, io8.bytes_loaded, "bytes unchanged");
        assert_eq!(io4.partitions_loaded, io8.partitions_loaded);
        // Depth 4 drains per 4-entry window: 3 of every 4 loads hidden.
        // Depth 8 chains two morsels: 7 of every 8 loads hidden.
        assert!(
            io8.io_overlapped_ns > io4.io_overlapped_ns,
            "depth 8 over morsels of 4 must hide strictly more I/O \
             (depth 4: {} ns, depth 8: {} ns)",
            io4.io_overlapped_ns,
            io8.io_overlapped_ns
        );
    }

    #[test]
    fn eight_contending_lanes_share_one_worker_fairly() {
        // Satellite audit: prove the round-robin pop rule has no positional
        // bias. Eight lanes contend for ONE worker; we log the global order
        // in which morsels execute and assert every lane is served exactly
        // once per round — i.e. the gap between consecutive services of the
        // same lane never exceeds the lane count.
        let t = table(200); // 20 partitions ⇒ 5 morsels of 4 per lane
        let pool = MorselPool::new(1);
        let order = Arc::new(parking_lot::Mutex::new(Vec::<usize>::new()));
        // Hold the worker at the gate until all eight lanes are queued, so
        // the pop order reflects queue discipline rather than a race with
        // submission.
        let gate = Arc::new(AtomicBool::new(false));
        let ios: Vec<IoStats> = (0..8).map(|_| IoStats::new()).collect();
        let tickets: Vec<ScanTicket> = ios
            .iter()
            .enumerate()
            .map(|(lane, io)| {
                let scan = compile(&t, io, None);
                let order = Arc::clone(&order);
                let gate = Arc::clone(&gate);
                let mut spec = spec_collecting(scan, io, &Arc::default());
                spec.morsel_partitions = 4;
                spec.prefetch_depth = 1;
                spec.sink = Box::new(move |_, _| {
                    while !gate.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                });
                spec.on_morsel_done = Some(Box::new(move |_| order.lock().push(lane)));
                pool.submit(pool.next_lane(), spec)
            })
            .collect();
        gate.store(true, Ordering::Release);
        for ticket in tickets {
            ticket.wait();
        }
        let order = order.lock().clone();
        assert_eq!(order.len(), 8 * 5);
        let mut last_seen = [None::<usize>; 8];
        let mut max_gap = 0usize;
        for (pos, &lane) in order.iter().enumerate() {
            if let Some(prev) = last_seen[lane] {
                max_gap = max_gap.max(pos - prev);
            }
            last_seen[lane] = Some(pos);
        }
        assert!(
            max_gap <= 8,
            "a lane waited {max_gap} pops between services; \
             round-robin over 8 lanes must bound the gap at 8"
        );
    }

    #[test]
    fn pool_counters_are_depth_invariant_without_runtime_signals() {
        // With no boundary and no early stop, the prefetch depth changes
        // only the overlap accounting — never which partitions load.
        let t = table(200);
        let fingerprint = |depth: usize| -> (ScanRunStats, u64, u64) {
            let io = IoStats::new();
            let scan = compile(&t, &io, Some(&col("x").lt(lit(90i64))));
            let pool = MorselPool::new(4);
            let rows = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut spec = spec_collecting(scan, &io, &rows);
            spec.prefetch_depth = depth;
            let stats = pool.submit(pool.next_lane(), spec).wait();
            let snap = io.snapshot();
            (stats, snap.partitions_loaded, snap.bytes_loaded)
        };
        let base = fingerprint(1);
        for depth in [2usize, 8] {
            let got = fingerprint(depth);
            assert_eq!(got.0, base.0, "stats diverged at depth {depth}");
            assert_eq!(got.1, base.1);
            assert_eq!(got.2, base.2);
        }
    }
}
