//! Column-major batches and the vectorized operators that consume them:
//! the filter/project chain, the hash-join build/probe, and the grouped
//! aggregator.
//!
//! The scan spine streams [`Batch`]es: a shared micro-partition plus a
//! [`SelVec`] naming the rows of one fixed-size window
//! ([`crate::ExecConfig::batch_rows`]) that survived the scan predicate.
//! Downstream filter/project stages are compiled once per query into a
//! [`BatchChain`], which refines the selection with the predicate kernels
//! of `snowprune_expr::kernel` and materializes row tuples **late** — only
//! at operator boundaries that genuinely need rows (top-k heap inserts,
//! join matches, aggregate group keys, the output sink).
//!
//! Joins and aggregations are batch-native too: [`JoinBuild`] keys its
//! hash table on column slices and probes arriving batches without
//! materializing non-matching rows, and [`BatchAggregator`] folds
//! `SelVec`-selected column windows straight into per-group
//! [`AggState`]s through typed monomorphized update
//! loops (`agg::fold_chunk_grouped`). Both fold inputs in scan
//! order, so their results are bit-identical to the row-at-a-time
//! fallback operators they replace.
//!
//! Because every batch carries its partition (`batch.part.meta.id`),
//! partition provenance for the §8.2 predicate cache flows per batch: a
//! partition is recorded as contributing as soon as any of its batches
//! yields a selected row, without per-row bookkeeping — and, since PR 7,
//! that provenance survives join probes and aggregations instead of being
//! dropped at the first row-fallback boundary.

use std::collections::HashMap;
use std::sync::Arc;

use snowprune_core::join::BloomFilter;
use snowprune_expr::kernel;
use snowprune_expr::Expr;
use snowprune_plan::AggFunc;
use snowprune_storage::{MicroPartition, Schema};
use snowprune_types::{Result, SelVec, Value};

use crate::agg::{finish_groups, fold_chunk_grouped, AggState};

/// One unit of columnar data flow: the rows of one window of one loaded
/// micro-partition that passed the scan predicate. Row indices in `sel`
/// are absolute partition row numbers, so consumers can read column
/// values (or materialize whole rows) straight off `part`. The partition
/// is held by `Arc`, so batches are cheap to clone and can cross worker
/// channels whole — the batch-native join and aggregation paths ship
/// refined batches from pool workers to the driver instead of
/// materialized row tuples.
pub struct Batch {
    /// The loaded partition this window belongs to.
    pub part: Arc<MicroPartition>,
    /// Qualifying rows of this window, ascending.
    pub sel: SelVec,
}

impl Batch {
    /// Number of selected rows in this batch.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True when no rows of this window qualified.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }
}

/// A compiled filter/project pipeline applied to every batch of one scan.
///
/// Built once per query from the plan's chain of `Filter`/`Project` nodes
/// above a scan: projections compose into a single output-column →
/// partition-column `map`, and each filter is rewritten through the
/// mapping in force where it appeared ([`Expr::remap_columns`]), so all
/// filters evaluate directly against partition columns. Applying the
/// chain is then pure selection refinement — no intermediate row tuples —
/// and materialization gathers only the final output columns.
#[derive(Clone, Debug)]
pub struct BatchChain {
    /// Filters in plan order, column indices remapped to partition layout.
    filters: Vec<Expr>,
    /// Output column `i` reads partition column `map[i]`.
    map: Vec<usize>,
}

impl BatchChain {
    /// The empty chain over a scan of `width` columns: no filters, output
    /// columns are the scan columns.
    pub fn identity(width: usize) -> BatchChain {
        BatchChain {
            filters: Vec::new(),
            map: (0..width).collect(),
        }
    }

    /// Append a filter stage. `expr` must be bound against the chain's
    /// *current* output schema; it is remapped to partition columns here.
    pub fn push_filter(&mut self, expr: &Expr) {
        self.filters.push(expr.remap_columns(&self.map));
    }

    /// Append a projection stage selecting current-output columns `cols`.
    pub fn push_project(&mut self, cols: &[usize]) {
        self.map = cols.iter().map(|&c| self.map[c]).collect();
    }

    /// True when the chain has no filter stages (projection-only chains
    /// can skip selection refinement entirely).
    pub fn has_filters(&self) -> bool {
        !self.filters.is_empty()
    }

    /// Number of output columns.
    pub fn output_width(&self) -> usize {
        self.map.len()
    }

    /// The partition column backing output column `out`. Batch-native
    /// consumers (join key reads, aggregate column folds) use this to
    /// reach through the projection map and read values straight off the
    /// partition's column slices.
    pub fn column_of(&self, out: usize) -> usize {
        self.map[out]
    }

    /// Refine `sel` in place by every filter stage, in plan order. Rows
    /// kept are exactly those on which each filter evaluates to SQL TRUE —
    /// identical to row-at-a-time chain evaluation, without materializing
    /// any intermediate tuple.
    pub fn refine(&self, part: &MicroPartition, sel: &mut SelVec) {
        for f in &self.filters {
            if sel.is_empty() {
                return;
            }
            kernel::refine(f, part, sel);
        }
    }

    /// Late materialization: gather output row `i` (an absolute partition
    /// row index) through the projection map.
    pub fn materialize(&self, part: &MicroPartition, i: usize) -> Vec<Value> {
        self.map
            .iter()
            .map(|&c| part.column(c).value_at(i))
            .collect()
    }

    /// Apply the full chain to a batch: refine its selection, then gather
    /// the surviving rows as output tuples.
    pub fn apply(&self, batch: &Batch) -> Vec<Vec<Value>> {
        let mut sel = batch.sel.clone();
        self.refine(&batch.part, &mut sel);
        let mut rows = Vec::with_capacity(sel.len());
        rows.extend(sel.iter().map(|i| self.materialize(&batch.part, i)));
        rows
    }
}

/// The build side of a batch-native hash join: materialized build rows
/// plus a hash index keyed on the join-key values, fed either row-at-a-
/// time (fallback shapes) or batch-at-a-time with keys read directly off
/// the key column's slices. NULL keys are kept in `keys` (the §6 join
/// summary sees every build value) but never indexed — an equi-join
/// compares `UNKNOWN` against NULL, so NULL build keys can match nothing.
#[derive(Default)]
pub struct JoinBuild {
    rows: Vec<Vec<Value>>,
    keys: Vec<Value>,
    index: HashMap<Value, Vec<usize>>,
}

impl JoinBuild {
    /// An empty build table.
    pub fn new() -> JoinBuild {
        JoinBuild::default()
    }

    /// Feed one materialized build row with its key value.
    pub fn push_row(&mut self, row: Vec<Value>, key: Value) {
        if !key.is_null() {
            self.index
                .entry(key.clone())
                .or_default()
                .push(self.rows.len());
        }
        self.keys.push(key);
        self.rows.push(row);
    }

    /// Feed one refined batch: rows materialize through `chain`, and the
    /// key of each selected row is read straight off the partition column
    /// backing chain-output column `key_out`.
    pub fn push_batch(&mut self, batch: &Batch, chain: &BatchChain, key_out: usize) {
        let kcol = batch.part.column(chain.column_of(key_out));
        for i in batch.sel.iter() {
            let row = chain.materialize(&batch.part, i);
            self.push_row(row, kcol.value_at(i));
        }
    }

    /// Every build key in build-row order (NULLs included), for the §6
    /// join summary and the row-level Bloom filter.
    pub fn keys(&self) -> &[Value] {
        &self.keys
    }

    /// The materialized build rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// True when no build key is indexed (probing cannot match anything).
    pub fn no_matches_possible(&self) -> bool {
        self.index.is_empty()
    }

    /// Build-row indices matching `key`, for row-at-a-time probing (the
    /// fallback path). A NULL key matches nothing — NULL build keys are
    /// never indexed, so the Kleene `UNKNOWN = UNKNOWN` case needs no
    /// special-casing at call sites.
    pub fn matches(&self, key: &Value) -> Option<&[usize]> {
        self.index.get(key).map(|v| v.as_slice())
    }

    /// Probe one refined batch against the build index. NULL-key probe
    /// rows are dropped first by the validity kernel
    /// ([`kernel::refine_valid`], Kleene `UNKNOWN` never qualifies), then
    /// each surviving key — read off the partition column backing
    /// `key_col` — passes the optional Bloom filter before the hash
    /// lookup. `on_match(i, build_rows)` receives the probe row index and
    /// the matching build-row indices; non-matching probe rows are never
    /// materialized. Returns the number of rows skipped by the Bloom
    /// filter.
    pub fn probe_batch(
        &self,
        batch: &Batch,
        key_col: usize,
        bloom: Option<&BloomFilter>,
        mut on_match: impl FnMut(usize, &[usize]),
    ) -> u64 {
        let mut sel = batch.sel.clone();
        kernel::refine_valid(&batch.part, key_col, &mut sel);
        let kcol = batch.part.column(key_col);
        let mut bloom_skips = 0u64;
        for i in sel.iter() {
            let key = kcol.value_at(i);
            if let Some(bf) = bloom {
                if !bf.might_contain(&key) {
                    bloom_skips += 1;
                    continue;
                }
            }
            if let Some(matches) = self.index.get(&key) {
                on_match(i, matches);
            }
        }
        bloom_skips
    }
}

/// Batch-native hash aggregation: group keys gather per selected row, and
/// each aggregate folds its column's `SelVec`-selected window into the
/// per-group [`AggState`]s through the typed loops of
/// `fold_chunk_grouped`. Feeding batches in scan order reproduces the
/// row-at-a-time [`aggregate_rows`](crate::agg::aggregate_rows) fold
/// order exactly — per (group, aggregate) state, the sequence of folded
/// values is identical — so results (including float accumulation) are
/// bit-identical to the fallback path.
pub struct BatchAggregator {
    group_cols: Vec<usize>,
    agg_cols: Vec<Option<usize>>,
    groups: HashMap<Vec<Value>, usize>,
    keys: Vec<Vec<Value>>,
    states: Vec<Vec<AggState>>,
    proto: Vec<AggState>,
    /// Scratch: selected row indices of the current batch.
    rows_scratch: Vec<usize>,
    /// Scratch: group id per selected row, parallel to `rows_scratch`.
    gids_scratch: Vec<usize>,
}

impl BatchAggregator {
    /// Compile an aggregator over a chain: group and aggregate columns
    /// resolve through the chain's projection map to partition columns,
    /// and each `SUM` picks its accumulator from the chain-output field
    /// type exactly as the row path does.
    pub fn new(
        chain: &BatchChain,
        output_schema: &Schema,
        group_by: &[String],
        aggs: &[AggFunc],
    ) -> Result<BatchAggregator> {
        let group_cols: Vec<usize> = group_by
            .iter()
            .map(|g| Ok(chain.column_of(output_schema.index_of(g)?)))
            .collect::<Result<_>>()?;
        let mut agg_cols = Vec::with_capacity(aggs.len());
        let mut proto = Vec::with_capacity(aggs.len());
        for a in aggs {
            let out = a
                .input_column()
                .map(|c| output_schema.index_of(c))
                .transpose()?;
            let is_float = out
                .map(|o| output_schema.fields()[o].ty == snowprune_types::ScalarType::Float)
                .unwrap_or(false);
            agg_cols.push(out.map(|o| chain.column_of(o)));
            proto.push(AggState::new(a, is_float));
        }
        Ok(BatchAggregator {
            group_cols,
            agg_cols,
            groups: HashMap::new(),
            keys: Vec::new(),
            states: Vec::new(),
            proto,
            rows_scratch: Vec::new(),
            gids_scratch: Vec::new(),
        })
    }

    /// Fold one refined batch. Group keys gather row-at-a-time (they are
    /// the only per-row materialization left); aggregate updates then run
    /// column-at-a-time through the typed kernels.
    pub fn update(&mut self, batch: &Batch) {
        if batch.is_empty() {
            return;
        }
        self.rows_scratch.clear();
        self.rows_scratch.extend(batch.sel.iter());
        self.gids_scratch.clear();
        let gchunks: Vec<_> = self
            .group_cols
            .iter()
            .map(|&c| batch.part.column(c))
            .collect();
        for &i in &self.rows_scratch {
            let key: Vec<Value> = gchunks.iter().map(|ch| ch.value_at(i)).collect();
            let gid = match self.groups.get(&key) {
                Some(&g) => g,
                None => {
                    let g = self.states.len();
                    self.groups.insert(key.clone(), g);
                    self.keys.push(key);
                    self.states.push(self.proto.clone());
                    g
                }
            };
            self.gids_scratch.push(gid);
        }
        for (slot, col) in self.agg_cols.iter().enumerate() {
            let chunk = col.map(|c| batch.part.column(c));
            fold_chunk_grouped(
                &mut self.states,
                slot,
                &self.rows_scratch,
                &self.gids_scratch,
                chunk,
            );
        }
    }

    /// Finalize every group into output rows (group key columns followed
    /// by aggregate values), in the same deterministic order as
    /// [`aggregate_rows`](crate::agg::aggregate_rows).
    pub fn finish(self) -> Vec<Vec<Value>> {
        finish_groups(self.keys.into_iter().zip(self.states))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::*;
    use snowprune_storage::{ColumnBuilder, Field, Schema};
    use snowprune_types::ScalarType;

    fn part() -> (Schema, Arc<MicroPartition>) {
        let schema = Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("b", ScalarType::Int),
            Field::new("c", ScalarType::Int),
        ]);
        let mut cols: Vec<ColumnBuilder> = (0..3)
            .map(|_| ColumnBuilder::new(ScalarType::Int))
            .collect();
        for i in 0..10i64 {
            cols[0].push(Value::Int(i));
            cols[1].push(Value::Int(i * 10));
            cols[2].push(Value::Int(i % 3));
        }
        let chunks = cols.into_iter().map(|c| c.finish()).collect();
        (
            schema.clone(),
            Arc::new(MicroPartition::from_chunks(7, &schema, chunks)),
        )
    }

    #[test]
    fn project_then_filter_sees_remapped_columns() {
        let (_, p) = part();
        let mut chain = BatchChain::identity(3);
        // Project [c, b]; then filter on output column 1 (= partition b).
        chain.push_project(&[2, 1]);
        let post_schema = Schema::new(vec![
            Field::new("c", ScalarType::Int),
            Field::new("b", ScalarType::Int),
        ]);
        chain.push_filter(&col("b").ge(lit(50i64)).bind(&post_schema).unwrap());
        assert!(chain.has_filters());
        assert_eq!(chain.output_width(), 2);
        assert_eq!(chain.column_of(1), 1);
        assert_eq!(chain.column_of(0), 2);

        let batch = Batch {
            part: Arc::clone(&p),
            sel: SelVec::All(0..10),
        };
        let rows = chain.apply(&batch);
        // Rows 5..10 survive; output is [c, b].
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], vec![Value::Int(5 % 3), Value::Int(50)]);
        assert_eq!(rows[4], vec![Value::Int(9 % 3), Value::Int(90)]);
    }

    #[test]
    fn identity_chain_materializes_rows_verbatim() {
        let (_, p) = part();
        let chain = BatchChain::identity(3);
        let batch = Batch {
            part: Arc::clone(&p),
            sel: SelVec::Rows(vec![2, 8]),
        };
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let rows = chain.apply(&batch);
        assert_eq!(rows, vec![p.row(2), p.row(8)]);
    }

    #[test]
    fn successive_projections_compose() {
        let (_, p) = part();
        let mut chain = BatchChain::identity(3);
        chain.push_project(&[2, 0, 1]); // [c, a, b]
        chain.push_project(&[2, 0]); // [b, c]
        assert_eq!(
            chain.materialize(&p, 4),
            vec![Value::Int(40), Value::Int(1)]
        );
    }

    #[test]
    fn join_build_probe_skips_nulls_and_misses() {
        // Build keyed on c (values 0,1,2); probe the same partition on c.
        let (_, p) = part();
        let chain = BatchChain::identity(3);
        let mut build = JoinBuild::new();
        build.push_row(vec![Value::Int(100)], Value::Int(1));
        build.push_row(vec![Value::Int(200)], Value::Null);
        build.push_row(vec![Value::Int(300)], Value::Int(1));
        assert_eq!(build.keys().len(), 3);
        assert!(!build.no_matches_possible());
        let batch = Batch {
            part: Arc::clone(&p),
            sel: SelVec::All(0..10),
        };
        let mut hits: Vec<(usize, Vec<usize>)> = Vec::new();
        let skips = build.probe_batch(&batch, chain.column_of(2), None, |i, m| {
            hits.push((i, m.to_vec()));
        });
        assert_eq!(skips, 0);
        // c == 1 at rows 1, 4, 7; each matches build rows 0 and 2 (the
        // NULL build key is never indexed).
        assert_eq!(
            hits,
            vec![(1, vec![0, 2]), (4, vec![0, 2]), (7, vec![0, 2])]
        );
    }

    #[test]
    fn batch_aggregator_matches_row_fold() {
        let (schema, p) = part();
        let chain = BatchChain::identity(3);
        let group_by = vec!["c".to_owned()];
        let aggs = vec![
            AggFunc::CountStar,
            AggFunc::Sum("b".into()),
            AggFunc::Min("a".into()),
            AggFunc::Max("b".into()),
            AggFunc::Avg("b".into()),
        ];
        let mut agg = BatchAggregator::new(&chain, &schema, &group_by, &aggs).unwrap();
        // Feed in two windows, as the scan would.
        for sel in [SelVec::All(0..6), SelVec::All(6..10)] {
            agg.update(&Batch {
                part: Arc::clone(&p),
                sel,
            });
        }
        let out = agg.finish();
        let rows: Vec<Vec<Value>> = (0..10i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10), Value::Int(i % 3)])
            .collect();
        let expect = crate::agg::aggregate_rows(&schema, rows, &group_by, &aggs, None).unwrap();
        // aggregate_rows keys output by the full input row shape: group
        // key first, then aggregate columns — identical layouts.
        assert_eq!(out, expect);
    }
}
