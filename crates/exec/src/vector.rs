//! Column-major batches and the vectorized filter/project chain.
//!
//! The scan spine streams [`Batch`]es: a borrowed micro-partition plus a
//! [`SelVec`] naming the rows of one fixed-size window
//! ([`crate::ExecConfig::batch_rows`]) that survived the scan predicate.
//! Downstream filter/project stages are compiled once per query into a
//! [`BatchChain`], which refines the selection with the predicate kernels
//! of `snowprune_expr::kernel` and materializes row tuples **late** — only
//! at operator boundaries that genuinely need rows (top-k heap inserts,
//! join probes, the output sink).
//!
//! Because every batch carries its partition (`batch.part.meta.id`),
//! partition provenance for the §8.2 predicate cache flows per batch: a
//! partition is recorded as contributing as soon as any of its batches
//! yields a selected row, without per-row bookkeeping.

use snowprune_expr::kernel;
use snowprune_expr::Expr;
use snowprune_storage::MicroPartition;
use snowprune_types::{SelVec, Value};

/// One unit of columnar data flow: the rows of one window of one loaded
/// micro-partition that passed the scan predicate. Row indices in `sel`
/// are absolute partition row numbers, so consumers can read column
/// values (or materialize whole rows) straight off `part`.
pub struct Batch<'a> {
    /// The loaded partition this window belongs to.
    pub part: &'a MicroPartition,
    /// Qualifying rows of this window, ascending.
    pub sel: SelVec,
}

impl Batch<'_> {
    /// Number of selected rows in this batch.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True when no rows of this window qualified.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }
}

/// A compiled filter/project pipeline applied to every batch of one scan.
///
/// Built once per query from the plan's chain of `Filter`/`Project` nodes
/// above a scan: projections compose into a single output-column →
/// partition-column `map`, and each filter is rewritten through the
/// mapping in force where it appeared ([`Expr::remap_columns`]), so all
/// filters evaluate directly against partition columns. Applying the
/// chain is then pure selection refinement — no intermediate row tuples —
/// and materialization gathers only the final output columns.
#[derive(Clone, Debug)]
pub struct BatchChain {
    /// Filters in plan order, column indices remapped to partition layout.
    filters: Vec<Expr>,
    /// Output column `i` reads partition column `map[i]`.
    map: Vec<usize>,
}

impl BatchChain {
    /// The empty chain over a scan of `width` columns: no filters, output
    /// columns are the scan columns.
    pub fn identity(width: usize) -> BatchChain {
        BatchChain {
            filters: Vec::new(),
            map: (0..width).collect(),
        }
    }

    /// Append a filter stage. `expr` must be bound against the chain's
    /// *current* output schema; it is remapped to partition columns here.
    pub fn push_filter(&mut self, expr: &Expr) {
        self.filters.push(expr.remap_columns(&self.map));
    }

    /// Append a projection stage selecting current-output columns `cols`.
    pub fn push_project(&mut self, cols: &[usize]) {
        self.map = cols.iter().map(|&c| self.map[c]).collect();
    }

    /// True when the chain has no filter stages (projection-only chains
    /// can skip selection refinement entirely).
    pub fn has_filters(&self) -> bool {
        !self.filters.is_empty()
    }

    /// Number of output columns.
    pub fn output_width(&self) -> usize {
        self.map.len()
    }

    /// Refine `sel` in place by every filter stage, in plan order. Rows
    /// kept are exactly those on which each filter evaluates to SQL TRUE —
    /// identical to row-at-a-time chain evaluation, without materializing
    /// any intermediate tuple.
    pub fn refine(&self, part: &MicroPartition, sel: &mut SelVec) {
        for f in &self.filters {
            if sel.is_empty() {
                return;
            }
            kernel::refine(f, part, sel);
        }
    }

    /// Late materialization: gather output row `i` (an absolute partition
    /// row index) through the projection map.
    pub fn materialize(&self, part: &MicroPartition, i: usize) -> Vec<Value> {
        self.map
            .iter()
            .map(|&c| part.column(c).value_at(i))
            .collect()
    }

    /// Apply the full chain to a batch: refine its selection, then gather
    /// the surviving rows as output tuples.
    pub fn apply(&self, batch: &Batch<'_>) -> Vec<Vec<Value>> {
        let mut sel = batch.sel.clone();
        self.refine(batch.part, &mut sel);
        let mut rows = Vec::with_capacity(sel.len());
        rows.extend(sel.iter().map(|i| self.materialize(batch.part, i)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::*;
    use snowprune_storage::{ColumnBuilder, Field, Schema};
    use snowprune_types::ScalarType;

    fn part() -> (Schema, MicroPartition) {
        let schema = Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("b", ScalarType::Int),
            Field::new("c", ScalarType::Int),
        ]);
        let mut cols: Vec<ColumnBuilder> = (0..3)
            .map(|_| ColumnBuilder::new(ScalarType::Int))
            .collect();
        for i in 0..10i64 {
            cols[0].push(Value::Int(i));
            cols[1].push(Value::Int(i * 10));
            cols[2].push(Value::Int(i % 3));
        }
        let chunks = cols.into_iter().map(|c| c.finish()).collect();
        (
            schema.clone(),
            MicroPartition::from_chunks(7, &schema, chunks),
        )
    }

    #[test]
    fn project_then_filter_sees_remapped_columns() {
        let (_, p) = part();
        let mut chain = BatchChain::identity(3);
        // Project [c, b]; then filter on output column 1 (= partition b).
        chain.push_project(&[2, 1]);
        let post_schema = Schema::new(vec![
            Field::new("c", ScalarType::Int),
            Field::new("b", ScalarType::Int),
        ]);
        chain.push_filter(&col("b").ge(lit(50i64)).bind(&post_schema).unwrap());
        assert!(chain.has_filters());
        assert_eq!(chain.output_width(), 2);

        let batch = Batch {
            part: &p,
            sel: SelVec::All(0..10),
        };
        let rows = chain.apply(&batch);
        // Rows 5..10 survive; output is [c, b].
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], vec![Value::Int(5 % 3), Value::Int(50)]);
        assert_eq!(rows[4], vec![Value::Int(9 % 3), Value::Int(90)]);
    }

    #[test]
    fn identity_chain_materializes_rows_verbatim() {
        let (_, p) = part();
        let chain = BatchChain::identity(3);
        let batch = Batch {
            part: &p,
            sel: SelVec::Rows(vec![2, 8]),
        };
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let rows = chain.apply(&batch);
        assert_eq!(rows, vec![p.row(2), p.row(8)]);
    }

    #[test]
    fn successive_projections_compose() {
        let (_, p) = part();
        let mut chain = BatchChain::identity(3);
        chain.push_project(&[2, 0, 1]); // [c, a, b]
        chain.push_project(&[2, 0]); // [b, c]
        assert_eq!(
            chain.materialize(&p, 4),
            vec![Value::Int(40), Value::Int(1)]
        );
    }
}
