//! The pruning verdict lattice.
//!
//! Evaluating a predicate against a partition's metadata cannot generally
//! decide the predicate per row; instead we track four conservative facts
//! about the (Kleene three-valued) truth value the predicate takes across
//! the partition's rows:
//!
//! * `may_true` — **over**-approximation of "some row evaluates to TRUE".
//!   When false, the partition is *not-matching* and can be pruned; this is
//!   the paper's no-false-negatives guarantee (§2.1).
//! * `all_true` — **under**-approximation of "every row evaluates to TRUE".
//!   When true, the partition is *fully-matching* (§4.2), enabling LIMIT
//!   pruning and top-k boundary initialization.
//! * `may_false` / `all_false` — the same for FALSE, needed to propagate
//!   verdicts through `NOT` without losing NULL soundness: a row where
//!   `x IS NULL` satisfies neither `x > 5` nor `NOT (x > 5)`.
//!
//! The duals make `not` exact on the lattice, which is what lets the
//! single-pass `all_true` detection agree with the paper's two-pass
//! inverted-predicate method (property-tested in `snowprune-expr`).

use serde::{Deserialize, Serialize};

/// Conservative knowledge about a predicate's truth values over a partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Verdict {
    /// Some row may evaluate to TRUE (over-approximation).
    pub may_true: bool,
    /// Every row definitely evaluates to TRUE (under-approximation).
    pub all_true: bool,
    /// Some row may evaluate to FALSE (over-approximation).
    pub may_false: bool,
    /// Every row definitely evaluates to FALSE (under-approximation).
    pub all_false: bool,
}

impl Verdict {
    /// No information: anything is possible. The safe default for
    /// expressions the pruner does not understand.
    pub const TOP: Verdict = Verdict {
        may_true: true,
        all_true: false,
        may_false: true,
        all_false: false,
    };

    /// Every row is TRUE.
    pub const ALWAYS_TRUE: Verdict = Verdict {
        may_true: true,
        all_true: true,
        may_false: false,
        all_false: false,
    };

    /// Every row is FALSE.
    pub const ALWAYS_FALSE: Verdict = Verdict {
        may_true: false,
        all_true: false,
        may_false: true,
        all_false: true,
    };

    /// Every row is UNKNOWN (e.g. comparing against NULL).
    pub const ALWAYS_UNKNOWN: Verdict = Verdict {
        may_true: false,
        all_true: false,
        may_false: false,
        all_false: false,
    };

    /// Build from exact knowledge of which truth values occur.
    pub fn from_exact(has_true: bool, has_false: bool, has_unknown: bool) -> Verdict {
        Verdict {
            may_true: has_true,
            all_true: has_true && !has_false && !has_unknown,
            may_false: has_false,
            all_false: has_false && !has_true && !has_unknown,
        }
    }

    /// Kleene AND over per-row truth values.
    pub fn and(self, other: Verdict) -> Verdict {
        Verdict {
            // a AND b is TRUE only where both are TRUE.
            may_true: self.may_true && other.may_true,
            all_true: self.all_true && other.all_true,
            // a AND b is FALSE wherever either is FALSE.
            may_false: self.may_false || other.may_false,
            all_false: self.all_false || other.all_false,
        }
    }

    /// Kleene OR over per-row truth values.
    pub fn or(self, other: Verdict) -> Verdict {
        Verdict {
            may_true: self.may_true || other.may_true,
            all_true: self.all_true || other.all_true,
            may_false: self.may_false && other.may_false,
            all_false: self.all_false && other.all_false,
        }
    }

    /// Kleene NOT: swaps the TRUE and FALSE facts (UNKNOWN maps to itself).
    #[allow(clippy::should_implement_trait)] // domain name mirroring and/or
    pub fn not(self) -> Verdict {
        Verdict {
            may_true: self.may_false,
            all_true: self.all_false,
            may_false: self.may_true,
            all_false: self.all_true,
        }
    }

    /// Whether the partition can be removed from the scan set.
    pub fn prunable(self) -> bool {
        !self.may_true
    }

    /// Whether the partition is fully matching (§4.2).
    pub fn fully_matching(self) -> bool {
        self.all_true
    }

    /// Classify for scan-set handling. Empty partitions are never matching.
    pub fn classify(self, row_count: u64) -> MatchClass {
        if row_count == 0 || self.prunable() {
            MatchClass::NotMatching
        } else if self.fully_matching() {
            MatchClass::FullyMatching
        } else {
            MatchClass::PartiallyMatching
        }
    }
}

/// The three partition categories of §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchClass {
    /// Pruned away by filter pruning: contains no qualifying rows.
    NotMatching,
    /// Might contain qualifying rows; retained in the scan set.
    PartiallyMatching,
    /// Every row qualifies all predicates (subset of partially-matching).
    FullyMatching,
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Verdict; 4] = [
        Verdict::TOP,
        Verdict::ALWAYS_TRUE,
        Verdict::ALWAYS_FALSE,
        Verdict::ALWAYS_UNKNOWN,
    ];

    #[test]
    fn not_is_involutive() {
        for v in ALL {
            assert_eq!(v.not().not(), v);
        }
    }

    #[test]
    fn de_morgan_holds_on_lattice() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn null_semantics_of_not() {
        // If every row is UNKNOWN, neither p nor NOT p matches any row.
        let u = Verdict::ALWAYS_UNKNOWN;
        assert!(u.prunable());
        assert!(u.not().prunable());
        assert!(!u.fully_matching());
        assert!(!u.not().fully_matching());
    }

    #[test]
    fn and_or_identities() {
        let t = Verdict::ALWAYS_TRUE;
        let f = Verdict::ALWAYS_FALSE;
        assert_eq!(t.and(f), f);
        assert_eq!(t.or(f), t);
        assert_eq!(Verdict::TOP.and(f), f);
        assert_eq!(Verdict::TOP.or(t), t);
        // TOP AND TRUE stays TOP-ish: may_true, not all_true.
        let v = Verdict::TOP.and(t);
        assert!(v.may_true && !v.all_true);
    }

    #[test]
    fn classify_rules() {
        assert_eq!(Verdict::ALWAYS_TRUE.classify(10), MatchClass::FullyMatching);
        assert_eq!(Verdict::ALWAYS_TRUE.classify(0), MatchClass::NotMatching);
        assert_eq!(Verdict::ALWAYS_FALSE.classify(10), MatchClass::NotMatching);
        assert_eq!(Verdict::TOP.classify(10), MatchClass::PartiallyMatching);
        assert_eq!(
            Verdict::ALWAYS_UNKNOWN.classify(10),
            MatchClass::NotMatching
        );
    }

    #[test]
    fn from_exact_matrix() {
        assert_eq!(
            Verdict::from_exact(true, false, false),
            Verdict::ALWAYS_TRUE
        );
        assert_eq!(
            Verdict::from_exact(false, true, false),
            Verdict::ALWAYS_FALSE
        );
        assert_eq!(
            Verdict::from_exact(false, false, true),
            Verdict::ALWAYS_UNKNOWN
        );
        let mixed = Verdict::from_exact(true, true, false);
        assert!(mixed.may_true && mixed.may_false && !mixed.all_true && !mixed.all_false);
    }
}
