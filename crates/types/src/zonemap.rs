//! Zone maps (a.k.a. small materialized aggregates): per-column, per-partition
//! min/max metadata, as described in §2.1 of the paper.
//!
//! Two realism details matter for correctness and are modelled explicitly:
//!
//! * **String truncation.** Metadata stores keep only a prefix of long
//!   strings. The stored *min* is a prefix of the true min (still a valid
//!   lower bound); the stored *max* is the truncated prefix with its last
//!   character incremented (a valid upper bound). Truncated bounds are
//!   *inexact*: no row is guaranteed to equal them, which matters for top-k
//!   boundary initialization (§5.4).
//! * **Null accounting.** `null_count`/`row_count` let pruning evaluate
//!   `IS NULL` exactly and keep three-valued logic sound.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Default number of characters kept for string bounds, mirroring the small
/// prefix real metadata services store.
pub const DEFAULT_STRING_PREFIX: usize = 32;

/// Min/max metadata for one column of one micro-partition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ZoneMap {
    /// Lower bound over all non-null values; `None` when the column has no
    /// non-null values in this partition.
    pub min: Option<Value>,
    /// Upper bound over all non-null values.
    pub max: Option<Value>,
    /// `true` when some row is known to equal `min` (false after truncation).
    pub min_exact: bool,
    /// `true` when some row is known to equal `max` (false after truncation).
    pub max_exact: bool,
    pub null_count: u64,
    pub row_count: u64,
}

impl ZoneMap {
    /// Zone map of an empty column chunk.
    pub fn empty() -> Self {
        ZoneMap {
            min: None,
            max: None,
            min_exact: false,
            max_exact: false,
            null_count: 0,
            row_count: 0,
        }
    }

    /// Build a zone map from values, truncating string bounds to
    /// `string_prefix` characters (use [`DEFAULT_STRING_PREFIX`] normally).
    pub fn build<'a>(values: impl IntoIterator<Item = &'a Value>, string_prefix: usize) -> Self {
        let mut zm = ZoneMap::empty();
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        for v in values {
            zm.row_count += 1;
            if v.is_null() {
                zm.null_count += 1;
                continue;
            }
            match min {
                None => {
                    min = Some(v);
                    max = Some(v);
                }
                Some(_) => {
                    if v.total_ord_cmp(min.unwrap()) == std::cmp::Ordering::Less {
                        min = Some(v);
                    }
                    if v.total_ord_cmp(max.unwrap()) == std::cmp::Ordering::Greater {
                        max = Some(v);
                    }
                }
            }
        }
        if let (Some(lo), Some(hi)) = (min, max) {
            let (lo_v, lo_exact) = truncate_lower(lo, string_prefix);
            let (hi_v, hi_exact) = truncate_upper(hi, string_prefix);
            zm.min = Some(lo_v);
            zm.max = hi_v; // None = unbounded above (carry overflow)
            zm.min_exact = lo_exact;
            zm.max_exact = hi_exact && zm.max.is_some();
        }
        zm
    }

    /// True when every row in the partition is NULL for this column (or the
    /// partition is empty).
    pub fn all_null(&self) -> bool {
        self.null_count == self.row_count
    }

    pub fn has_nulls(&self) -> bool {
        self.null_count > 0
    }

    /// Number of non-null rows.
    pub fn non_null_count(&self) -> u64 {
        self.row_count - self.null_count
    }

    /// Merge two zone maps covering disjoint row sets (e.g. pages into a
    /// row group, row groups into a file).
    pub fn merge(&self, other: &ZoneMap) -> ZoneMap {
        fn pick(
            a: &Option<Value>,
            a_exact: bool,
            b: &Option<Value>,
            b_exact: bool,
            want_less: bool,
        ) -> (Option<Value>, bool) {
            match (a, b) {
                (None, None) => (None, false),
                (Some(x), None) => (Some(x.clone()), a_exact),
                (None, Some(y)) => (Some(y.clone()), b_exact),
                (Some(x), Some(y)) => {
                    let x_wins = match x.total_ord_cmp(y) {
                        std::cmp::Ordering::Less => want_less,
                        std::cmp::Ordering::Greater => !want_less,
                        std::cmp::Ordering::Equal => return (Some(x.clone()), a_exact || b_exact),
                    };
                    if x_wins {
                        (Some(x.clone()), a_exact)
                    } else {
                        (Some(y.clone()), b_exact)
                    }
                }
            }
        }
        // An unbounded max (None with non-null rows) poisons the merge: the
        // merged max must also be unbounded.
        let self_unbounded = self.max.is_none() && self.non_null_count() > 0;
        let other_unbounded = other.max.is_none() && other.non_null_count() > 0;
        let (min, min_exact) = pick(&self.min, self.min_exact, &other.min, other.min_exact, true);
        let (max, max_exact) = if self_unbounded || other_unbounded {
            (None, false)
        } else {
            pick(
                &self.max,
                self.max_exact,
                &other.max,
                other.max_exact,
                false,
            )
        };
        ZoneMap {
            min,
            max,
            min_exact,
            max_exact,
            null_count: self.null_count + other.null_count,
            row_count: self.row_count + other.row_count,
        }
    }
}

/// Truncate a lower bound. A string prefix is lexicographically `<=` the
/// original, so it remains a valid lower bound; it is inexact if shortened.
fn truncate_lower(v: &Value, prefix: usize) -> (Value, bool) {
    match v {
        Value::Str(s) if s.chars().count() > prefix => {
            (Value::Str(s.chars().take(prefix).collect()), false)
        }
        other => (other.clone(), true),
    }
}

/// Truncate an upper bound: keep the prefix and increment its last character
/// so the result is `>=` every string that starts with the original prefix.
/// Returns `(None, false)` if the increment carries out of the string
/// (all characters at `char::MAX`), meaning "unbounded above".
fn truncate_upper(v: &Value, prefix: usize) -> (Option<Value>, bool) {
    match v {
        Value::Str(s) if s.chars().count() > prefix => {
            let mut chars: Vec<char> = s.chars().take(prefix).collect();
            while let Some(&c) = chars.last() {
                if let Some(next) = char::from_u32(c as u32 + 1) {
                    *chars.last_mut().unwrap() = next;
                    return (Some(Value::Str(chars.into_iter().collect())), false);
                }
                chars.pop();
            }
            (None, false)
        }
        other => (Some(other.clone()), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[Option<i64>]) -> Vec<Value> {
        vals.iter()
            .map(|v| v.map_or(Value::Null, Value::Int))
            .collect()
    }

    #[test]
    fn builds_min_max_and_null_counts() {
        let vals = ints(&[Some(5), None, Some(-3), Some(9), None]);
        let zm = ZoneMap::build(&vals, DEFAULT_STRING_PREFIX);
        assert_eq!(zm.min, Some(Value::Int(-3)));
        assert_eq!(zm.max, Some(Value::Int(9)));
        assert!(zm.min_exact && zm.max_exact);
        assert_eq!(zm.null_count, 2);
        assert_eq!(zm.row_count, 5);
    }

    #[test]
    fn all_null_column() {
        let vals = ints(&[None, None]);
        let zm = ZoneMap::build(&vals, DEFAULT_STRING_PREFIX);
        assert!(zm.all_null());
        assert_eq!(zm.min, None);
    }

    #[test]
    fn string_truncation_stays_conservative() {
        let long_lo = "aaaaaaaaaa-suffix-low".to_owned();
        let long_hi = "zzzz-very-long-string-suffix".to_owned();
        let vals = vec![Value::Str(long_lo.clone()), Value::Str(long_hi.clone())];
        let zm = ZoneMap::build(&vals, 4);
        let min = zm.min.as_ref().unwrap().as_str().unwrap().to_owned();
        let max = zm.max.as_ref().unwrap().as_str().unwrap().to_owned();
        assert!(min.as_str() <= long_lo.as_str(), "{min} vs {long_lo}");
        assert!(max.as_str() >= long_hi.as_str(), "{max} vs {long_hi}");
        assert!(!zm.min_exact && !zm.max_exact);
    }

    #[test]
    fn upper_truncation_carry() {
        let s: String = std::iter::repeat_n(char::MAX, 6).collect();
        let (v, exact) = truncate_upper(&Value::Str(s), 3);
        assert_eq!(v, None);
        assert!(!exact);
    }

    #[test]
    fn merge_combines_bounds() {
        let a = ZoneMap::build(&ints(&[Some(1), Some(5)]), 32);
        let b = ZoneMap::build(&ints(&[Some(-2), None]), 32);
        let m = a.merge(&b);
        assert_eq!(m.min, Some(Value::Int(-2)));
        assert_eq!(m.max, Some(Value::Int(5)));
        assert_eq!(m.row_count, 4);
        assert_eq!(m.null_count, 1);
        assert!(m.min_exact && m.max_exact);
    }

    #[test]
    fn merge_respects_unbounded_max() {
        let mut a = ZoneMap::build(&ints(&[Some(1)]), 32);
        a.max = None; // simulate carry-out truncation
        let b = ZoneMap::build(&ints(&[Some(2)]), 32);
        let m = a.merge(&b);
        assert_eq!(m.max, None);
    }
}
