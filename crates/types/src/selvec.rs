//! Selection vectors for columnar batch execution.
//!
//! A [`SelVec`] names the rows of a micro-partition batch that survived
//! predicate evaluation, in ascending row order. The common no-nulls,
//! nothing-filtered case is represented as a contiguous [`SelVec::All`]
//! range so fully-matching batches never allocate an index list; once any
//! row is dropped the selection degrades to an explicit sorted index list.
//!
//! Row indices are **absolute partition row numbers**, not batch-relative
//! offsets, so late materialization (`column.value_at(i)`) and partition
//! provenance work directly off a selection without re-basing.

use std::ops::Range;

/// The rows of one batch that qualify, in ascending partition-row order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelVec {
    /// Every row in `range` qualifies (contiguous, allocation-free).
    All(Range<usize>),
    /// Exactly these rows qualify (sorted ascending, duplicate-free).
    Rows(Vec<usize>),
}

impl SelVec {
    /// An empty selection.
    pub fn empty() -> SelVec {
        SelVec::Rows(Vec::new())
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::All(r) => r.len(),
            SelVec::Rows(v) => v.len(),
        }
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the selected row indices in ascending order.
    pub fn iter(&self) -> SelIter<'_> {
        match self {
            SelVec::All(r) => SelIter::All(r.clone()),
            SelVec::Rows(v) => SelIter::Rows(v.iter()),
        }
    }

    /// Materialize the selection as an index list (mainly for tests and
    /// row-fallback consumers).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Retain only the selected rows passing `test`, in place. A
    /// fully-passing [`SelVec::All`] range keeps its allocation-free form;
    /// dropping any row degrades it to an explicit index list. This is the
    /// primitive behind every predicate kernel: monomorphized per call
    /// site so each typed test compiles to a tight loop.
    #[inline]
    pub fn retain(&mut self, test: impl Fn(usize) -> bool) {
        match self {
            SelVec::All(range) => {
                let mut rows = Vec::with_capacity(range.len());
                rows.extend(range.clone().filter(|&i| test(i)));
                if rows.len() != range.len() {
                    *self = SelVec::Rows(rows);
                }
                // else: every row passed — keep the allocation-free form.
            }
            SelVec::Rows(rows) => rows.retain(|&i| test(i)),
        }
    }
}

impl<'a> IntoIterator for &'a SelVec {
    type Item = usize;
    type IntoIter = SelIter<'a>;

    fn into_iter(self) -> SelIter<'a> {
        self.iter()
    }
}

/// Iterator over the row indices of a [`SelVec`].
pub enum SelIter<'a> {
    /// Walking a contiguous [`SelVec::All`] range.
    All(Range<usize>),
    /// Walking an explicit [`SelVec::Rows`] index list.
    Rows(std::slice::Iter<'a, usize>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::All(r) => r.next(),
            SelIter::Rows(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelIter::All(r) => r.size_hint(),
            SelIter::Rows(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for SelIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_range_is_contiguous_and_sized() {
        let s = SelVec::All(3..7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.to_vec(), vec![3, 4, 5, 6]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn rows_list_roundtrips() {
        let s = SelVec::Rows(vec![1, 4, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![1, 4, 9]);
        let collected: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(collected, vec![1, 4, 9]);
    }

    #[test]
    fn empty_forms() {
        assert!(SelVec::empty().is_empty());
        assert!(SelVec::All(5..5).is_empty());
        assert_eq!(SelVec::All(5..5).to_vec(), Vec::<usize>::new());
    }

    #[test]
    fn retain_keeps_all_form_when_everything_passes() {
        let mut s = SelVec::All(2..6);
        s.retain(|_| true);
        assert_eq!(s, SelVec::All(2..6));
        s.retain(|i| i % 2 == 0);
        assert_eq!(s, SelVec::Rows(vec![2, 4]));
        s.retain(|i| i > 2);
        assert_eq!(s, SelVec::Rows(vec![4]));
    }
}
