//! Foundational types for `snowprune`: the SQL value model, zone maps,
//! value ranges (interval arithmetic), and the pruning verdict lattice.
//!
//! This crate is dependency-light and shared by every other crate in the
//! workspace. See `DESIGN.md` at the repository root for how these pieces
//! map onto the paper.

#![forbid(unsafe_code)]

pub mod diag;
pub mod knobs;
pub mod range;
pub mod selvec;
pub mod value;
pub mod verdict;
pub mod zonemap;

pub use diag::{DiagCode, Diagnostic, Severity, Span};
pub use range::{LiteralRange, RangeBound, ShapeKey, ValueRange};
pub use selvec::{SelIter, SelVec};
pub use value::{arith, KeyValue, ScalarType, Value};
pub use verdict::{MatchClass, Verdict};
pub use zonemap::{ZoneMap, DEFAULT_STRING_PREFIX};

/// Errors shared across the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A column referenced by name or index does not exist.
    UnknownColumn(String),
    /// An operation received a value of an unexpected type.
    TypeMismatch { expected: String, found: String },
    /// A table, partition, or other object was not found.
    NotFound(String),
    /// The request is structurally invalid (e.g. malformed plan).
    Invalid(String),
    /// The static plan analyzer rejected the plan at admission. Carries
    /// every error-severity [`Diagnostic`] the analyzer produced (never
    /// empty).
    PlanRejected(Vec<Diagnostic>),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Invalid(msg) => write!(f, "invalid request: {msg}"),
            Error::PlanRejected(diags) => {
                write!(f, "plan rejected by static analysis ({} error", diags.len())?;
                if diags.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;
