//! Plan diagnostics: the typed findings emitted by the static plan
//! analyzer (`snowprune-analyze`) and carried by
//! [`Error::PlanRejected`](crate::Error::PlanRejected).
//!
//! Diagnostics live in this dependency-light crate (rather than in the
//! analyzer) so that the shared [`Error`](crate::Error) enum can embed
//! them without creating a dependency cycle: every crate already depends
//! on `snowprune-types`, and the analyzer re-exports these names.

use std::fmt;

/// A half-open byte range into some source text (SQL statement, config
/// string). Spans are attached to diagnostics by front-ends that have a
/// source text to point into; plan-level analyzer findings carry none.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered (`start == end` marks a
    /// point, e.g. unexpected end of input).
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `at` (e.g. end of input).
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based line and column of the span start within `src`.
    ///
    /// Columns count *chars* since the last newline, so multi-byte text
    /// earlier on the line (legal inside SQL string literals) doesn't
    /// inflate the column. Out-of-range starts clamp to the end.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let at = self.start.min(src.len());
        let before = &src[..at];
        let line = before.bytes().filter(|b| *b == b'\n').count() + 1;
        let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let col = src[line_start..at].chars().count() + 1;
        (line, col)
    }
}

/// How serious a [`Diagnostic`] is.
///
/// Only [`Severity::Error`] diagnostics reject a plan at admission;
/// warnings and infos ride along in the analyzer's report (soundness
/// hints, cacheability explanations) without blocking execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory context (e.g. why a plan is or isn't cacheable).
    Info,
    /// Suspicious but executable (e.g. provenance not attributable).
    Warning,
    /// The plan is ill-formed and must not execute.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable machine-readable code identifying a class of plan finding.
///
/// Codes are the contract of the mutation-style property suite: a mutated
/// plan must produce a diagnostic with the *expected* code, not merely any
/// diagnostic, so each code names one failure class precisely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// A referenced column does not exist in the input schema.
    UnknownColumn,
    /// A comparison whose operand types can never compare: under SQL's
    /// Kleene semantics it evaluates to UNKNOWN on every row.
    IncomparableCmp,
    /// A comparison against the NULL literal: always UNKNOWN; the plan
    /// almost certainly wanted `IS NULL`.
    NullComparison,
    /// A predicate position (filter, AND/OR operand, IF condition) holds a
    /// provably non-boolean expression: always UNKNOWN as a predicate.
    NonBooleanPredicate,
    /// Arithmetic or negation over a provably non-numeric operand: always
    /// NULL.
    NonNumericArith,
    /// `LIKE`/`STARTS WITH` over a provably non-string operand: always
    /// UNKNOWN.
    NonStringPattern,
    /// Join keys with statically incomparable types: the equi-join can
    /// never match a pair.
    JoinKeyMismatch,
    /// `SUM`/`AVG` over a provably non-numeric input column.
    BadAggregateInput,
    /// A `Sort` node with no keys: the order (and any LIMIT above it) is
    /// unspecified.
    EmptySortKeys,
    /// A cacheable-looking spine whose row provenance cannot be attributed
    /// to partitions of a single target scan (e.g. the target table is
    /// scanned more than once, or rows pass through distinct-key
    /// filtering).
    ProvenanceNotAttributable,
    /// Why the plan is *not* eligible for the §8.2 predicate cache.
    NotCacheable,
    /// The plan is eligible for the §8.2 predicate cache.
    Cacheable,
    /// How many of a scan predicate's conjuncts the zone-map pruner can
    /// evaluate (pruning-soundness precondition detection).
    ZoneMapEligibility,
    /// A predicated scan where *no* conjunct is zone-map eligible: filter
    /// pruning cannot skip any partition for this scan.
    NoPrunableConjunct,
    /// The SQL front-end could not lex or parse the statement.
    SqlSyntax,
    /// A referenced table does not exist in the catalog.
    UnknownTable,
    /// An unqualified column name resolves in more than one joined table.
    AmbiguousColumn,
    /// Syntactically valid SQL using a feature the front-end does not
    /// lower (e.g. a SELECT list the plan IR cannot express).
    SqlUnsupported,
}

impl DiagCode {
    /// The stable kebab-case spelling used in reports and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::UnknownColumn => "unknown-column",
            DiagCode::IncomparableCmp => "incomparable-comparison",
            DiagCode::NullComparison => "null-comparison",
            DiagCode::NonBooleanPredicate => "non-boolean-predicate",
            DiagCode::NonNumericArith => "non-numeric-arithmetic",
            DiagCode::NonStringPattern => "non-string-pattern",
            DiagCode::JoinKeyMismatch => "join-key-type-mismatch",
            DiagCode::BadAggregateInput => "bad-aggregate-input",
            DiagCode::EmptySortKeys => "empty-sort-keys",
            DiagCode::ProvenanceNotAttributable => "provenance-not-attributable",
            DiagCode::NotCacheable => "not-cacheable",
            DiagCode::Cacheable => "cacheable",
            DiagCode::ZoneMapEligibility => "zone-map-eligibility",
            DiagCode::NoPrunableConjunct => "no-prunable-conjunct",
            DiagCode::SqlSyntax => "sql-syntax",
            DiagCode::UnknownTable => "unknown-table",
            DiagCode::AmbiguousColumn => "ambiguous-column",
            DiagCode::SqlUnsupported => "sql-unsupported",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the static plan analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Machine-readable finding class.
    pub code: DiagCode,
    /// Whether this finding rejects the plan ([`Severity::Error`]) or
    /// merely annotates it.
    pub severity: Severity,
    /// Where in the plan tree the finding anchors, as a root-to-node path
    /// such as `Limit/Sort/Scan(fact).predicate`.
    pub plan_path: String,
    /// Human-readable explanation.
    pub message: String,
    /// Source location, when the finding came from a front-end holding
    /// source text (the SQL parser/binder); `None` for plan-level
    /// analyzer findings.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: DiagCode, plan_path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            plan_path: plan_path.into(),
            message: message.into(),
            span: None,
        }
    }

    /// A [`Severity::Warning`] diagnostic.
    pub fn warning(
        code: DiagCode,
        plan_path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            plan_path: plan_path.into(),
            message: message.into(),
            span: None,
        }
    }

    /// A [`Severity::Info`] diagnostic.
    pub fn info(code: DiagCode, plan_path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            plan_path: plan_path.into(),
            message: message.into(),
            span: None,
        }
    }

    /// Attach a source span (builder style).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// True for [`Severity::Error`] diagnostics.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.plan_path, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_grep_friendly() {
        let d = Diagnostic::error(
            DiagCode::UnknownColumn,
            "Filter/Scan(t).predicate",
            "no `x`",
        );
        assert_eq!(
            d.to_string(),
            "error[unknown-column] at Filter/Scan(t).predicate: no `x`"
        );
        assert!(d.is_error());
        assert!(!Diagnostic::info(DiagCode::Cacheable, "Scan(t)", "ok").is_error());
    }

    #[test]
    fn span_line_col_counts_from_one() {
        let src = "SELECT *\nFROM t\nWHERE x";
        assert_eq!(Span::new(0, 6).line_col(src), (1, 1));
        assert_eq!(Span::new(9, 13).line_col(src), (2, 1));
        assert_eq!(Span::new(22, 23).line_col(src), (3, 7));
        assert_eq!(Span::point(src.len()).line_col(src), (3, 8));
        assert_eq!(Span::new(2, 3).to(Span::new(9, 13)), Span::new(2, 13));
    }

    #[test]
    fn span_line_col_counts_chars_not_bytes() {
        // 'é' is 2 bytes, 1 char: the column after it advances by one.
        let src = "a'é'b";
        let at = src.find('b').unwrap();
        assert_eq!(Span::point(at).line_col(src), (1, 5));
    }

    #[test]
    fn with_span_rides_along() {
        let d =
            Diagnostic::error(DiagCode::SqlSyntax, "sql", "bad token").with_span(Span::new(4, 7));
        assert_eq!(d.span, Some(Span::new(4, 7)));
        // Display stays span-free: front-ends render carets themselves.
        assert_eq!(d.to_string(), "error[sql-syntax] at sql: bad token");
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
