//! The scalar value model shared by storage metadata, expressions, and
//! execution.
//!
//! Values follow SQL semantics: `Null` is absent data, comparisons between
//! `Null` and anything are *unknown* (represented as `None` from
//! [`Value::sql_cmp`]), and the numeric types coerce with each other.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The type of a column or scalar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarType {
    Bool,
    Int,
    Float,
    Str,
    /// Days since the Unix epoch.
    Date,
    /// Microseconds since the Unix epoch.
    Timestamp,
}

impl ScalarType {
    /// Whether two types are comparable (possibly via numeric coercion).
    pub fn comparable_with(self, other: ScalarType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }

    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, ScalarType::Int | ScalarType::Float)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::Bool => "BOOLEAN",
            ScalarType::Int => "BIGINT",
            ScalarType::Float => "DOUBLE",
            ScalarType::Str => "VARCHAR",
            ScalarType::Date => "DATE",
            ScalarType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single SQL scalar value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since the Unix epoch.
    Date(i32),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The type of this value, or `None` for `Null` (untyped).
    pub fn scalar_type(&self) -> Option<ScalarType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ScalarType::Bool),
            Value::Int(_) => Some(ScalarType::Int),
            Value::Float(_) => Some(ScalarType::Float),
            Value::Str(_) => Some(ScalarType::Str),
            Value::Date(_) => Some(ScalarType::Date),
            Value::Timestamp(_) => Some(ScalarType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL comparison: `None` when either side is `Null` or the types are
    /// incomparable (the predicate evaluates to *unknown*).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some(cmp_i64_f64(*a, *b)),
            (Value::Float(a), Value::Int(b)) => Some(cmp_i64_f64(*b, *a).reverse()),
            (Value::Str(a), Value::Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality with three-valued logic: `None` means *unknown*.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Numeric view of the value, coercing `Int` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes, used by the storage layer for
    /// partition sizing and by join summaries for their byte budget.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Timestamp(_) => 8,
            Value::Float(_) => 8,
            Value::Date(_) => 4,
            Value::Str(s) => 16 + s.len(),
        }
    }
}

/// Exact comparison between an `i64` and an `f64` without precision loss for
/// large integers.
fn cmp_i64_f64(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        // total_cmp places NaN above all numbers; mirror that here so mixed
        // comparisons stay consistent with Float/Float ordering.
        return Ordering::Less;
    }
    if b == f64::INFINITY {
        return Ordering::Less;
    }
    if b == f64::NEG_INFINITY {
        return Ordering::Greater;
    }
    // 2^63 = 9.22e18: every f64 with |b| >= 2^63 is outside i64's range.
    if b >= 9_223_372_036_854_775_808.0 {
        return Ordering::Less;
    }
    if b < -9_223_372_036_854_775_808.0 {
        return Ordering::Greater;
    }
    let bt = b.trunc();
    let bi = bt as i64;
    match a.cmp(&bi) {
        Ordering::Equal => {
            let frac = b - bt;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        ord => ord,
    }
}

impl PartialEq for Value {
    /// Structural equality for use in collections and tests.
    ///
    /// Unlike [`Value::sql_eq`], `Null == Null` here and `Int(1) !=
    /// Float(1.0)`; NaN equals NaN (via `total_cmp`). Use `sql_eq` for query
    /// semantics.
    fn eq(&self, other: &Self) -> bool {
        self.total_ord_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Date(d) => d.hash(state),
            Value::Timestamp(t) => t.hash(state),
        }
    }
}

impl Value {
    /// A total order over *all* values, for data structures (heaps, BTree
    /// keys). `Null` sorts lowest; across type classes the order follows the
    /// discriminant; numerics compare by value.
    pub fn total_ord_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Date(_) => 4,
                Value::Timestamp(_) => 5,
            }
        }
        match class(self).cmp(&class(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Int(a), Value::Int(b)) => a.cmp(b),
                (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
                (Value::Int(a), Value::Float(b)) => cmp_i64_f64(*a, *b),
                (Value::Float(a), Value::Int(b)) => cmp_i64_f64(*b, *a).reverse(),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (Value::Date(a), Value::Date(b)) => a.cmp(b),
                (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
                _ => unreachable!("same class"),
            },
            ord => ord,
        }
    }
}

/// Wrapper giving [`Value`] a total `Ord` for use in `BinaryHeap`/`BTreeMap`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct KeyValue(pub Value);

impl PartialOrd for KeyValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_ord_cmp(&other.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(d) => write!(f, "DATE({d})"),
            Value::Timestamp(t) => write!(f, "TS({t})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Checked SQL arithmetic with numeric promotion. Returns `None` on type
/// errors; overflow promotes to float.
pub mod arith {
    use super::Value;

    pub fn add(a: &Value, b: &Value) -> Option<Value> {
        binop(a, b, i64::checked_add, |x, y| x + y)
    }

    pub fn sub(a: &Value, b: &Value) -> Option<Value> {
        binop(a, b, i64::checked_sub, |x, y| x - y)
    }

    pub fn mul(a: &Value, b: &Value) -> Option<Value> {
        binop(a, b, i64::checked_mul, |x, y| x * y)
    }

    /// SQL division always yields a float; division by zero yields `Null`
    /// (matching engines that return NULL rather than erroring mid-scan).
    pub fn div(a: &Value, b: &Value) -> Option<Value> {
        if a.is_null() || b.is_null() {
            return Some(Value::Null);
        }
        let (x, y) = (a.as_f64()?, b.as_f64()?);
        if y == 0.0 {
            Some(Value::Null)
        } else {
            Some(Value::Float(x / y))
        }
    }

    pub fn neg(a: &Value) -> Option<Value> {
        match a {
            Value::Null => Some(Value::Null),
            Value::Int(i) => Some(
                i.checked_neg()
                    .map_or(Value::Float(-(*i as f64)), Value::Int),
            ),
            Value::Float(f) => Some(Value::Float(-f)),
            _ => None,
        }
    }

    fn binop(
        a: &Value,
        b: &Value,
        int_op: fn(i64, i64) -> Option<i64>,
        float_op: fn(f64, f64) -> f64,
    ) -> Option<Value> {
        match (a, b) {
            (Value::Null, _) | (_, Value::Null) => Some(Value::Null),
            (Value::Int(x), Value::Int(y)) => Some(
                int_op(*x, *y)
                    .map_or_else(|| Value::Float(float_op(*x as f64, *y as f64)), Value::Int),
            ),
            _ => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Some(Value::Float(float_op(x, y)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn large_int_float_comparison_is_exact() {
        // 2^53 + 1 is not representable as f64; a naive cast would compare equal.
        let big = (1i64 << 53) + 1;
        assert_eq!(
            Value::Int(big).sql_cmp(&Value::Float((1i64 << 53) as f64)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(i64::MAX).sql_cmp(&Value::Float(f64::INFINITY)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).sql_cmp(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incompatible_types_are_unknown() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Str("a".into())), None);
        assert_eq!(Value::Date(1).sql_cmp(&Value::Timestamp(1)), None);
    }

    #[test]
    fn total_order_covers_all_classes() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Null,
            Value::Int(3),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Date(10),
        ];
        vals.sort_by(|a, b| a.total_ord_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(3));
    }

    #[test]
    fn arithmetic_overflow_promotes() {
        let v = arith::add(&Value::Int(i64::MAX), &Value::Int(1)).unwrap();
        assert!(matches!(v, Value::Float(_)));
        assert_eq!(
            arith::div(&Value::Int(1), &Value::Int(0)),
            Some(Value::Null)
        );
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
    }
}
