//! The single choke point for `SNOWPRUNE_*` environment knobs.
//!
//! Every runtime knob the workspace reads from the environment is (a)
//! declared in [`REGISTRY`] and (b) read through one of the typed readers
//! in this module — `cargo xtask lint` enforces both mechanically, and
//! additionally requires every registered knob to appear in the README
//! knob documentation. Centralizing the reads gives all knobs the same
//! failure contract: a malformed value **panics with the variable name and
//! the offending value** (a typo'd CI matrix entry must fail loudly, not
//! silently run defaults), while an *unset* variable returns `None` —
//! absence is the documented "use the default" signal.
//!
//! The `criterion` compat shim keeps its own direct reads of
//! `SNOWPRUNE_BENCH_SAMPLES`/`SNOWPRUNE_BENCH_WARMUP_MS` (it mirrors an
//! external crate and must stay dependency-free); those names are still
//! registered here so the README coverage check applies to them.

/// How a knob's value is parsed, for documentation and error messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnobKind {
    /// A `usize` clamped to `>= 1` (worker counts, depths, batch sizes).
    UsizeMin1,
    /// A `usize` where `0` is meaningful (queue capacities).
    UsizeAny,
    /// A boolean toggle: `1`/`0`, `true`/`false`, `on`/`off`.
    Toggle,
    /// One of a fixed set of case-insensitive choices.
    Choice(&'static [&'static str]),
    /// A filesystem path, taken verbatim.
    Path,
}

/// One registered environment knob.
#[derive(Clone, Copy, Debug)]
pub struct KnobDef {
    /// The environment variable name (`SNOWPRUNE_*`).
    pub name: &'static str,
    /// How the value parses.
    pub kind: KnobKind,
    /// One-line summary of what the knob controls.
    pub summary: &'static str,
}

/// Every `SNOWPRUNE_*` environment knob the workspace reads.
pub const REGISTRY: &[KnobDef] = &[
    KnobDef {
        name: "SNOWPRUNE_SCAN_THREADS",
        kind: KnobKind::UsizeMin1,
        summary: "scan worker threads shared by a pool/session",
    },
    KnobDef {
        name: "SNOWPRUNE_PREFETCH_DEPTH",
        kind: KnobKind::UsizeMin1,
        summary: "partition loads in flight per scan lane",
    },
    KnobDef {
        name: "SNOWPRUNE_BATCH_ROWS",
        kind: KnobKind::UsizeMin1,
        summary: "rows per column-major batch on the vectorized spine",
    },
    KnobDef {
        name: "SNOWPRUNE_TENANT_MAX_CONCURRENT",
        kind: KnobKind::UsizeMin1,
        summary: "per-tenant in-flight query cap under admission control",
    },
    KnobDef {
        name: "SNOWPRUNE_ADMISSION_QUEUE_CAP",
        kind: KnobKind::UsizeAny,
        summary: "per-tenant queued-query cap behind the in-flight window",
    },
    KnobDef {
        name: "SNOWPRUNE_PREDICATE_CACHE",
        kind: KnobKind::Toggle,
        summary: "enable the §8.2 predicate cache",
    },
    KnobDef {
        name: "SNOWPRUNE_PREDICATE_CACHE_MODE",
        kind: KnobKind::Choice(&["exact", "shape"]),
        summary: "predicate-cache fingerprint mode",
    },
    KnobDef {
        name: "SNOWPRUNE_VERIFY_PLANS",
        kind: KnobKind::Toggle,
        summary: "static plan verification at admission (default on)",
    },
    KnobDef {
        name: "SNOWPRUNE_BENCH_DIR",
        kind: KnobKind::Path,
        summary: "directory benchmark snapshots are written to",
    },
    KnobDef {
        name: "SNOWPRUNE_BENCH_SAMPLES",
        kind: KnobKind::UsizeMin1,
        summary: "timed samples per benchmark (criterion shim)",
    },
    KnobDef {
        name: "SNOWPRUNE_BENCH_WARMUP_MS",
        kind: KnobKind::UsizeMin1,
        summary: "warm-up budget per benchmark in ms (criterion shim)",
    },
];

/// Look up a knob's registry entry by name.
pub fn lookup(name: &str) -> Option<&'static KnobDef> {
    REGISTRY.iter().find(|k| k.name == name)
}

/// Raw registered read: `None` when unset.
///
/// # Panics
/// When `name` is not in [`REGISTRY`] — adding a knob without registering
/// it is a programming error the lint also catches statically.
fn read(name: &str) -> Option<String> {
    assert!(
        lookup(name).is_some(),
        "environment knob {name} is not registered in snowprune_types::knobs::REGISTRY"
    );
    std::env::var(name).ok()
}

/// Read a `usize >= 1` knob.
///
/// # Panics
/// On a malformed value (non-integer or `< 1`), with the variable name and
/// the offending value in the message.
pub fn usize_min1(name: &str) -> Option<usize> {
    let raw = read(name)?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => panic!("{name}={raw:?} is not a valid value (expected an integer >= 1)"),
    }
}

/// Read a `usize` knob where `0` is meaningful.
///
/// # Panics
/// On a non-integer value, with the variable name and the offending value.
pub fn usize_any(name: &str) -> Option<usize> {
    let raw = read(name)?;
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => panic!("{name}={raw:?} is not a valid value (expected a non-negative integer)"),
    }
}

/// Read a boolean toggle knob (`1`/`0`, `true`/`false`, `on`/`off`).
///
/// # Panics
/// On any other spelling, with the variable name and the offending value.
pub fn toggle(name: &str) -> Option<bool> {
    let raw = read(name)?;
    match raw.trim() {
        "1" | "true" | "on" => Some(true),
        "0" | "false" | "off" => Some(false),
        _ => panic!("{name}={raw:?} is not a valid toggle (expected 1/0, true/false, or on/off)"),
    }
}

/// Read a fixed-choice knob, matching case-insensitively; returns the
/// canonical (registered) spelling.
///
/// # Panics
/// On a value outside `options`, with the variable name, the offending
/// value, and the accepted spellings.
pub fn choice(name: &str, options: &'static [&'static str]) -> Option<&'static str> {
    let raw = read(name)?;
    let lowered = raw.trim().to_ascii_lowercase();
    match options.iter().find(|o| **o == lowered) {
        Some(o) => Some(o),
        None => panic!(
            "{name}={raw:?} is not a valid value (expected one of: {})",
            options.join(", ")
        ),
    }
}

/// Read a path knob verbatim.
pub fn path(name: &str) -> Option<String> {
    read(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    // Test-only serialization of the process-global environment.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    fn env_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn with_var<R>(var: &str, value: Option<&str>, f: impl FnOnce() -> R) -> R {
        let _guard = env_lock();
        match value {
            Some(v) => std::env::set_var(var, v),
            None => std::env::remove_var(var),
        }
        let out = f();
        std::env::remove_var(var);
        out
    }

    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        match std::panic::catch_unwind(f) {
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
            Ok(()) => panic!("expected a panic"),
        }
    }

    #[test]
    fn every_registry_name_is_snowprune_prefixed_and_unique() {
        for def in REGISTRY {
            assert!(def.name.starts_with("SNOWPRUNE_"), "{}", def.name);
            assert!(!def.summary.is_empty(), "{}", def.name);
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn unset_knobs_read_as_none() {
        with_var("SNOWPRUNE_PREFETCH_DEPTH", None, || {
            assert_eq!(usize_min1("SNOWPRUNE_PREFETCH_DEPTH"), None);
        });
        with_var("SNOWPRUNE_VERIFY_PLANS", None, || {
            assert_eq!(toggle("SNOWPRUNE_VERIFY_PLANS"), None);
        });
    }

    #[test]
    fn well_formed_values_parse() {
        with_var("SNOWPRUNE_PREFETCH_DEPTH", Some(" 8 "), || {
            assert_eq!(usize_min1("SNOWPRUNE_PREFETCH_DEPTH"), Some(8));
        });
        with_var("SNOWPRUNE_ADMISSION_QUEUE_CAP", Some("0"), || {
            assert_eq!(usize_any("SNOWPRUNE_ADMISSION_QUEUE_CAP"), Some(0));
        });
        with_var("SNOWPRUNE_VERIFY_PLANS", Some("off"), || {
            assert_eq!(toggle("SNOWPRUNE_VERIFY_PLANS"), Some(false));
        });
        with_var("SNOWPRUNE_PREDICATE_CACHE_MODE", Some("Shape"), || {
            assert_eq!(
                choice("SNOWPRUNE_PREDICATE_CACHE_MODE", &["exact", "shape"]),
                Some("shape")
            );
        });
        with_var("SNOWPRUNE_BENCH_DIR", Some("/tmp/x"), || {
            assert_eq!(path("SNOWPRUNE_BENCH_DIR").as_deref(), Some("/tmp/x"));
        });
    }

    #[test]
    fn malformed_values_panic_with_name_and_value() {
        with_var("SNOWPRUNE_PREFETCH_DEPTH", Some("abc"), || {
            let m = panic_message(|| {
                usize_min1("SNOWPRUNE_PREFETCH_DEPTH");
            });
            assert!(m.contains("SNOWPRUNE_PREFETCH_DEPTH"), "{m}");
            assert!(m.contains("abc"), "{m}");
        });
        with_var("SNOWPRUNE_SCAN_THREADS", Some("0"), || {
            let m = panic_message(|| {
                usize_min1("SNOWPRUNE_SCAN_THREADS");
            });
            assert!(m.contains("SNOWPRUNE_SCAN_THREADS"), "{m}");
        });
        with_var("SNOWPRUNE_VERIFY_PLANS", Some("maybe"), || {
            let m = panic_message(|| {
                toggle("SNOWPRUNE_VERIFY_PLANS");
            });
            assert!(m.contains("SNOWPRUNE_VERIFY_PLANS"), "{m}");
            assert!(m.contains("maybe"), "{m}");
        });
        with_var("SNOWPRUNE_PREDICATE_CACHE_MODE", Some("fuzzy"), || {
            let m = panic_message(|| {
                choice("SNOWPRUNE_PREDICATE_CACHE_MODE", &["exact", "shape"]);
            });
            assert!(m.contains("fuzzy"), "{m}");
            assert!(m.contains("exact"), "{m}");
        });
    }

    #[test]
    fn unregistered_reads_panic() {
        let m = panic_message(|| {
            usize_min1("SNOWPRUNE_NOT_A_KNOB");
        });
        assert!(m.contains("not registered"), "{m}");
    }
}
