//! Value ranges and the interval arithmetic behind "Deriving Min/Max Ranges"
//! (§3.1 of the paper).
//!
//! A [`ValueRange`] over-approximates the set of values an expression can
//! take on a partition, given the zone maps of its input columns. Bounds are
//! inclusive; `None` means unbounded on that side. Float arithmetic widens
//! results by one ULP so rounding can never make a range *smaller* than the
//! true image (which would break the no-false-negative pruning guarantee).

use std::cmp::Ordering;

use crate::value::Value;
use crate::zonemap::ZoneMap;

/// An inclusive, possibly unbounded range of values plus null tracking.
#[derive(Clone, Debug, PartialEq)]
pub struct ValueRange {
    /// Inclusive lower bound (`None` = unbounded below).
    pub lo: Option<Value>,
    /// Inclusive upper bound (`None` = unbounded above).
    pub hi: Option<Value>,
    /// Whether the expression may evaluate to NULL on some row.
    pub may_null: bool,
    /// Whether the expression evaluates to NULL on *every* row.
    pub all_null: bool,
}

impl ValueRange {
    /// Completely unknown range.
    pub fn top() -> Self {
        ValueRange {
            lo: None,
            hi: None,
            may_null: true,
            all_null: false,
        }
    }

    /// Range of a single known non-null constant.
    pub fn point(v: Value) -> Self {
        if v.is_null() {
            return ValueRange::null();
        }
        ValueRange {
            lo: Some(v.clone()),
            hi: Some(v),
            may_null: false,
            all_null: false,
        }
    }

    /// Range of the constant NULL.
    pub fn null() -> Self {
        ValueRange {
            lo: None,
            hi: None,
            may_null: true,
            all_null: true,
        }
    }

    /// The range of a column given its zone map.
    pub fn from_zone_map(zm: &ZoneMap) -> Self {
        ValueRange {
            lo: zm.min.clone(),
            hi: zm.max.clone(),
            may_null: zm.has_nulls(),
            all_null: zm.row_count > 0 && zm.all_null(),
        }
    }

    /// Union of the images of two branches (used for `IF`/`CASE`, §3.1:
    /// "the resulting min/max range is extended to encompass the min/max
    /// ranges of both sub-expressions").
    pub fn union(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            lo: union_bound(&self.lo, &other.lo, true),
            hi: union_bound(&self.hi, &other.hi, false),
            may_null: self.may_null || other.may_null,
            all_null: self.all_null && other.all_null,
        }
    }

    /// True if some value in the range could compare `Less` than `v`.
    /// Conservative: incomparable types answer `true`.
    pub fn possibly_lt(&self, v: &Value) -> bool {
        match &self.lo {
            None => true,
            Some(lo) => match lo.sql_cmp(v) {
                Some(Ordering::Less) => true,
                Some(_) => false,
                None => true,
            },
        }
    }

    pub fn possibly_le(&self, v: &Value) -> bool {
        match &self.lo {
            None => true,
            Some(lo) => !matches!(lo.sql_cmp(v), Some(Ordering::Greater)),
        }
    }

    pub fn possibly_gt(&self, v: &Value) -> bool {
        match &self.hi {
            None => true,
            Some(hi) => match hi.sql_cmp(v) {
                Some(Ordering::Greater) => true,
                Some(_) => false,
                None => true,
            },
        }
    }

    pub fn possibly_ge(&self, v: &Value) -> bool {
        match &self.hi {
            None => true,
            Some(hi) => !matches!(hi.sql_cmp(v), Some(Ordering::Less)),
        }
    }

    pub fn possibly_eq(&self, v: &Value) -> bool {
        self.possibly_le(v) && self.possibly_ge(v)
    }

    /// True only if *every* value in the range is `< v` (requires a bounded,
    /// comparable upper bound).
    pub fn certainly_lt(&self, v: &Value) -> bool {
        matches!(
            self.hi.as_ref().and_then(|hi| hi.sql_cmp(v)),
            Some(Ordering::Less)
        )
    }

    pub fn certainly_le(&self, v: &Value) -> bool {
        matches!(
            self.hi.as_ref().and_then(|hi| hi.sql_cmp(v)),
            Some(Ordering::Less | Ordering::Equal)
        )
    }

    pub fn certainly_gt(&self, v: &Value) -> bool {
        matches!(
            self.lo.as_ref().and_then(|lo| lo.sql_cmp(v)),
            Some(Ordering::Greater)
        )
    }

    pub fn certainly_ge(&self, v: &Value) -> bool {
        matches!(
            self.lo.as_ref().and_then(|lo| lo.sql_cmp(v)),
            Some(Ordering::Greater | Ordering::Equal)
        )
    }

    pub fn certainly_eq(&self, v: &Value) -> bool {
        self.certainly_ge(v) && self.certainly_le(v)
    }

    /// Whether the two ranges can contain a common value. Conservative.
    pub fn overlaps(&self, other: &ValueRange) -> bool {
        let self_below = match (&self.hi, &other.lo) {
            (Some(hi), Some(lo)) => matches!(hi.sql_cmp(lo), Some(Ordering::Less)),
            _ => false,
        };
        let self_above = match (&self.lo, &other.hi) {
            (Some(lo), Some(hi)) => matches!(lo.sql_cmp(hi), Some(Ordering::Greater)),
            _ => false,
        };
        !(self_below || self_above)
    }

    // ---- arithmetic -------------------------------------------------------

    pub fn add(&self, other: &ValueRange) -> ValueRange {
        self.arith(other, ArithOp::Add)
    }

    pub fn sub(&self, other: &ValueRange) -> ValueRange {
        self.arith(other, ArithOp::Sub)
    }

    pub fn mul(&self, other: &ValueRange) -> ValueRange {
        self.arith(other, ArithOp::Mul)
    }

    /// Division: a divisor range that may contain zero poisons the result
    /// (unbounded + may-null), because `x / 0` evaluates to NULL.
    pub fn div(&self, other: &ValueRange) -> ValueRange {
        let may_null = self.may_null || other.may_null;
        let zero = Value::Int(0);
        if other.possibly_eq(&zero) {
            return ValueRange {
                lo: None,
                hi: None,
                may_null: true,
                all_null: self.all_null || other.all_null,
            };
        }
        let mut r = self.arith(other, ArithOp::Div);
        r.may_null = may_null;
        r
    }

    pub fn neg(&self) -> ValueRange {
        let flip = |b: &Option<Value>| -> Option<Value> {
            b.as_ref()
                .and_then(crate::value::arith::neg)
                .filter(|v| !v.is_null())
        };
        ValueRange {
            lo: flip(&self.hi),
            hi: flip(&self.lo),
            may_null: self.may_null,
            all_null: self.all_null,
        }
    }

    fn arith(&self, other: &ValueRange, op: ArithOp) -> ValueRange {
        let may_null = self.may_null || other.may_null;
        let all_null = self.all_null || other.all_null;
        let a = NumInterval::from_range(self);
        let b = NumInterval::from_range(other);
        match (a, b) {
            (Some(a), Some(b)) => {
                let r = a.apply(b, op);
                ValueRange {
                    lo: r.lo_value(),
                    hi: r.hi_value(),
                    may_null,
                    all_null,
                }
            }
            // Non-numeric operand: arithmetic on it yields NULL at runtime,
            // so the only possible output is NULL.
            _ => ValueRange {
                lo: None,
                hi: None,
                may_null,
                all_null,
            },
        }
    }
}

// ---- predicate literal ranges (§8.2 shape-mode fingerprints) -------------

/// One endpoint of a [`LiteralRange`]: a non-null comparison literal plus
/// whether the endpoint itself is included (`>=`/`<=` vs `>`/`<`).
#[derive(Clone, Debug, PartialEq)]
pub struct RangeBound {
    /// The literal value of the bound. Never [`Value::Null`] — predicates
    /// comparing against NULL match no rows and are not range-representable.
    pub value: Value,
    /// `true` for inclusive comparisons (`>=`, `<=`, `=`).
    pub inclusive: bool,
}

/// The interval a conjunctive predicate pins one column to, extracted from
/// comparison literals (`v >= 50`, `v BETWEEN 10 AND 90`, …). Used by the
/// shape-mode predicate cache (§8.2 extension): two plans with identical
/// literal-abstracted shapes are compared by these per-column intervals to
/// decide whether a cached entry's predicate *subsumes* a query's.
///
/// `None` on a side means unbounded. An interval may be empty
/// (contradictory conjuncts); containment checks stay sound for empty
/// intervals without special-casing them.
#[derive(Clone, Debug, PartialEq)]
pub struct LiteralRange {
    /// The constrained column's name.
    pub column: String,
    /// Lower bound (`None` = unbounded below).
    pub lo: Option<RangeBound>,
    /// Upper bound (`None` = unbounded above).
    pub hi: Option<RangeBound>,
}

impl LiteralRange {
    /// The unconstrained interval for `column`.
    pub fn unbounded(column: impl Into<String>) -> Self {
        LiteralRange {
            column: column.into(),
            lo: None,
            hi: None,
        }
    }

    /// Intersect a `column > value` / `column >= value` conjunct into the
    /// interval, keeping the tighter lower bound. Returns `false` when the
    /// new bound is incomparable with the current one (mixed types), in
    /// which case the interval is left unchanged and the caller should
    /// treat the predicate as not range-representable.
    pub fn tighten_lo(&mut self, value: Value, inclusive: bool) -> bool {
        match &self.lo {
            None => {
                self.lo = Some(RangeBound { value, inclusive });
                true
            }
            Some(cur) => match value.sql_cmp(&cur.value) {
                None => false,
                Some(Ordering::Greater) => {
                    self.lo = Some(RangeBound { value, inclusive });
                    true
                }
                Some(Ordering::Equal) => {
                    // Exclusive beats inclusive at the same endpoint.
                    if cur.inclusive && !inclusive {
                        self.lo = Some(RangeBound { value, inclusive });
                    }
                    true
                }
                Some(Ordering::Less) => true,
            },
        }
    }

    /// Intersect a `column < value` / `column <= value` conjunct into the
    /// interval, keeping the tighter upper bound. See [`Self::tighten_lo`].
    pub fn tighten_hi(&mut self, value: Value, inclusive: bool) -> bool {
        match &self.hi {
            None => {
                self.hi = Some(RangeBound { value, inclusive });
                true
            }
            Some(cur) => match value.sql_cmp(&cur.value) {
                None => false,
                Some(Ordering::Less) => {
                    self.hi = Some(RangeBound { value, inclusive });
                    true
                }
                Some(Ordering::Equal) => {
                    if cur.inclusive && !inclusive {
                        self.hi = Some(RangeBound { value, inclusive });
                    }
                    true
                }
                Some(Ordering::Greater) => true,
            },
        }
    }

    /// Does this interval contain every value of `other`? Conservative:
    /// incomparable bounds answer `false` (the caller must not subsume).
    pub fn contains(&self, other: &LiteralRange) -> bool {
        let lo_ok = match (&self.lo, &other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(s), Some(o)) => match s.value.sql_cmp(&o.value) {
                Some(Ordering::Less) => true,
                Some(Ordering::Equal) => s.inclusive || !o.inclusive,
                _ => false,
            },
        };
        let hi_ok = match (&self.hi, &other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(s), Some(o)) => match s.value.sql_cmp(&o.value) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => s.inclusive || !o.inclusive,
                _ => false,
            },
        };
        lo_ok && hi_ok
    }

    /// Are the two intervals exactly equal (same bounds, same
    /// inclusivity)? Required for top-k subsumption, where a merely wider
    /// entry predicate would rank its top-k over a different row set.
    pub fn same_interval(&self, other: &LiteralRange) -> bool {
        fn bound_eq(a: &Option<RangeBound>, b: &Option<RangeBound>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    a.inclusive == b.inclusive && a.value.sql_cmp(&b.value) == Some(Ordering::Equal)
                }
                _ => false,
            }
        }
        bound_eq(&self.lo, &other.lo) && bound_eq(&self.hi, &other.hi)
    }
}

/// A shape-mode predicate-cache key (§8.2 extension): a literal-abstracted
/// plan hash plus the concrete literal range each predicate column is
/// pinned to, and — for top-k plans — how many rows the plan needs
/// (`k + offset`, excluded from the hash).
///
/// Produced by `snowprune_plan::shape_signature` and stored/compared by
/// `snowprune_cache::PredicateCache`: two plans with the same
/// `fingerprint` differ at most in their comparison literals and top-k row
/// count, so subsumption between them reduces to comparing `ranges` (and
/// `need`).
#[derive(Clone, Debug, PartialEq)]
pub struct ShapeKey {
    /// Literal-abstracted plan hash (the shape-index key).
    pub fingerprint: u64,
    /// Whole-plan per-column literal intervals, sorted by column name.
    pub ranges: Vec<LiteralRange>,
    /// `k + offset` for `Limit(Sort(..))` plans, `None` for filter chains.
    pub need: Option<u64>,
}

fn union_bound(a: &Option<Value>, b: &Option<Value>, want_less: bool) -> Option<Value> {
    match (a, b) {
        (Some(x), Some(y)) => match x.sql_cmp(y) {
            Some(Ordering::Less) => Some(if want_less { x.clone() } else { y.clone() }),
            Some(Ordering::Greater) => Some(if want_less { y.clone() } else { x.clone() }),
            Some(Ordering::Equal) => Some(x.clone()),
            None => None, // mixed types: give up on this side
        },
        _ => None,
    }
}

#[derive(Clone, Copy)]
enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// One bound of a numeric interval. Keeps the integer track exact when
/// possible and falls back to ULP-widened floats otherwise.
#[derive(Clone, Copy, Debug)]
enum NumBound {
    NegInf,
    Int(i64),
    Float(f64),
    PosInf,
}

impl NumBound {
    fn to_f64_lo(self) -> f64 {
        match self {
            NumBound::NegInf => f64::NEG_INFINITY,
            NumBound::Int(i) => {
                let f = i as f64;
                // Casting can round up past the true value; step down if so.
                if crate::value::Value::Int(i)
                    .sql_cmp(&crate::value::Value::Float(f))
                    .is_some_and(|o| o == Ordering::Less)
                {
                    f.next_down()
                } else {
                    f
                }
            }
            NumBound::Float(f) => f,
            NumBound::PosInf => f64::INFINITY,
        }
    }

    fn to_f64_hi(self) -> f64 {
        match self {
            NumBound::NegInf => f64::NEG_INFINITY,
            NumBound::Int(i) => {
                let f = i as f64;
                if crate::value::Value::Int(i)
                    .sql_cmp(&crate::value::Value::Float(f))
                    .is_some_and(|o| o == Ordering::Greater)
                {
                    f.next_up()
                } else {
                    f
                }
            }
            NumBound::Float(f) => f,
            NumBound::PosInf => f64::INFINITY,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct NumInterval {
    lo: NumBound,
    hi: NumBound,
}

impl NumInterval {
    /// `None` when the range holds non-numeric values.
    fn from_range(r: &ValueRange) -> Option<NumInterval> {
        let lo = match &r.lo {
            None => NumBound::NegInf,
            Some(Value::Int(i)) => NumBound::Int(*i),
            Some(Value::Float(f)) => NumBound::Float(*f),
            Some(_) => return None,
        };
        let hi = match &r.hi {
            None => NumBound::PosInf,
            Some(Value::Int(i)) => NumBound::Int(*i),
            Some(Value::Float(f)) => NumBound::Float(*f),
            Some(_) => return None,
        };
        Some(NumInterval { lo, hi })
    }

    fn apply(self, other: NumInterval, op: ArithOp) -> NumInterval {
        // Integer fast path: both intervals fully integral and finite and the
        // checked ops succeed -> exact integer bounds.
        if let (
            NumBound::Int(a_lo),
            NumBound::Int(a_hi),
            NumBound::Int(b_lo),
            NumBound::Int(b_hi),
        ) = (self.lo, self.hi, other.lo, other.hi)
        {
            if !matches!(op, ArithOp::Div) {
                let int_op = |x: i64, y: i64| -> Option<i64> {
                    match op {
                        ArithOp::Add => x.checked_add(y),
                        ArithOp::Sub => x.checked_sub(y),
                        ArithOp::Mul => x.checked_mul(y),
                        ArithOp::Div => unreachable!(),
                    }
                };
                let corners = [
                    int_op(a_lo, b_lo),
                    int_op(a_lo, b_hi),
                    int_op(a_hi, b_lo),
                    int_op(a_hi, b_hi),
                ];
                if corners.iter().all(Option::is_some) {
                    let vals: Vec<i64> = corners.into_iter().map(Option::unwrap).collect();
                    return NumInterval {
                        lo: NumBound::Int(*vals.iter().min().unwrap()),
                        hi: NumBound::Int(*vals.iter().max().unwrap()),
                    };
                }
            }
        }
        // Float track with ULP widening.
        let (a_lo, a_hi) = (self.lo.to_f64_lo(), self.hi.to_f64_hi());
        let (b_lo, b_hi) = (other.lo.to_f64_lo(), other.hi.to_f64_hi());
        let f = |x: f64, y: f64| -> f64 {
            match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => mul_corner(x, y),
                ArithOp::Div => {
                    if y == 0.0 {
                        f64::NAN
                    } else {
                        x / y
                    }
                }
            }
        };
        let corners = [f(a_lo, b_lo), f(a_lo, b_hi), f(a_hi, b_lo), f(a_hi, b_hi)];
        if corners.iter().any(|c| c.is_nan()) {
            return NumInterval {
                lo: NumBound::NegInf,
                hi: NumBound::PosInf,
            };
        }
        let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        NumInterval {
            lo: finite_or_inf(lo.next_down(), false),
            hi: finite_or_inf(hi.next_up(), true),
        }
    }

    fn lo_value(self) -> Option<Value> {
        match self.lo {
            NumBound::NegInf => None,
            NumBound::Int(i) => Some(Value::Int(i)),
            NumBound::Float(f) => Some(Value::Float(f)),
            NumBound::PosInf => Some(Value::Float(f64::INFINITY)),
        }
    }

    fn hi_value(self) -> Option<Value> {
        match self.hi {
            NumBound::PosInf => None,
            NumBound::Int(i) => Some(Value::Int(i)),
            NumBound::Float(f) => Some(Value::Float(f)),
            NumBound::NegInf => Some(Value::Float(f64::NEG_INFINITY)),
        }
    }
}

/// Corner multiplication with the convention `0 * ±inf = 0`, which yields
/// correct interval corners (the unbounded factor only matters when the
/// other factor can be nonzero, in which case another corner captures it).
fn mul_corner(x: f64, y: f64) -> f64 {
    if x == 0.0 || y == 0.0 {
        0.0
    } else {
        x * y
    }
}

fn finite_or_inf(f: f64, pos: bool) -> NumBound {
    if f.is_finite() {
        NumBound::Float(f)
    } else if pos {
        NumBound::PosInf
    } else {
        NumBound::NegInf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_range(lo: i64, hi: i64) -> ValueRange {
        ValueRange {
            lo: Some(Value::Int(lo)),
            hi: Some(Value::Int(hi)),
            may_null: false,
            all_null: false,
        }
    }

    #[test]
    fn paper_example_altitude_scaling() {
        // §3.1: altit in [934, 7674]; altit * 0.3048 ~ [284.68, 2339.04].
        let altit = int_range(934, 7674);
        let factor = ValueRange::point(Value::Float(0.3048));
        let scaled = altit.mul(&factor);
        let lo = scaled.lo.clone().unwrap().as_f64().unwrap();
        let hi = scaled.hi.clone().unwrap().as_f64().unwrap();
        assert!((lo - 284.68).abs() < 0.01, "lo = {lo}");
        assert!((hi - 2339.04).abs() < 0.01, "hi = {hi}");
        // The comparison `> 1500` partially overlaps -> possibly true.
        assert!(scaled.possibly_gt(&Value::Int(1500)));
        assert!(!scaled.certainly_gt(&Value::Int(1500)));
        // The IF(...) union with the raw range extends to [284.68.., 7674].
        let unioned = scaled.union(&int_range(934, 7674));
        assert!(unioned.possibly_gt(&Value::Int(1500)));
        assert_eq!(unioned.hi, Some(Value::Int(7674)));
    }

    #[test]
    fn integer_track_is_exact() {
        let r = int_range(-3, 4).mul(&int_range(2, 5));
        assert_eq!(r.lo, Some(Value::Int(-15)));
        assert_eq!(r.hi, Some(Value::Int(20)));
    }

    #[test]
    fn overflow_falls_back_to_float() {
        let r = int_range(i64::MAX - 1, i64::MAX).add(&int_range(1, 2));
        assert!(matches!(r.lo, Some(Value::Float(_))));
        let lo = r.lo.unwrap().as_f64().unwrap();
        assert!(lo <= i64::MAX as f64);
    }

    #[test]
    fn division_by_possible_zero_is_top() {
        let r = int_range(1, 10).div(&int_range(-1, 1));
        assert_eq!(r.lo, None);
        assert_eq!(r.hi, None);
        assert!(r.may_null);
    }

    #[test]
    fn division_exact_enough() {
        let r = int_range(10, 20).div(&int_range(2, 2));
        assert!(r.certainly_ge(&Value::Float(4.999)));
        assert!(r.certainly_le(&Value::Float(10.001)));
    }

    #[test]
    fn unbounded_times_zero_width() {
        let unbounded = ValueRange {
            lo: None,
            hi: None,
            may_null: false,
            all_null: false,
        };
        let zero = ValueRange::point(Value::Int(0));
        let r = unbounded.mul(&zero);
        assert!(r.possibly_eq(&Value::Int(0)));
        assert!(r.certainly_le(&Value::Float(0.1)));
        assert!(r.certainly_ge(&Value::Float(-0.1)));
    }

    #[test]
    fn comparisons_on_mixed_types_are_conservative() {
        let r = ValueRange {
            lo: Some(Value::Str("a".into())),
            hi: Some(Value::Str("z".into())),
            may_null: false,
            all_null: false,
        };
        assert!(r.possibly_gt(&Value::Int(5)));
        assert!(!r.certainly_gt(&Value::Int(5)));
    }

    #[test]
    fn overlap_checks() {
        assert!(int_range(0, 10).overlaps(&int_range(10, 20)));
        assert!(!int_range(0, 9).overlaps(&int_range(10, 20)));
        assert!(int_range(5, 6).overlaps(&ValueRange::top()));
    }

    #[test]
    fn negation_swaps_bounds() {
        let r = int_range(-3, 7).neg();
        assert_eq!(r.lo, Some(Value::Int(-7)));
        assert_eq!(r.hi, Some(Value::Int(3)));
    }

    fn lit_range(lo: Option<(i64, bool)>, hi: Option<(i64, bool)>) -> LiteralRange {
        LiteralRange {
            column: "v".into(),
            lo: lo.map(|(v, inclusive)| RangeBound {
                value: Value::Int(v),
                inclusive,
            }),
            hi: hi.map(|(v, inclusive)| RangeBound {
                value: Value::Int(v),
                inclusive,
            }),
        }
    }

    #[test]
    fn literal_range_tighten_keeps_tighter_bound() {
        let mut r = LiteralRange::unbounded("v");
        assert!(r.tighten_lo(Value::Int(10), true));
        assert!(r.tighten_lo(Value::Int(5), true)); // looser: ignored
        assert_eq!(
            r.lo,
            Some(RangeBound {
                value: Value::Int(10),
                inclusive: true
            })
        );
        assert!(r.tighten_lo(Value::Int(10), false)); // exclusive beats inclusive
        assert_eq!(
            r.lo,
            Some(RangeBound {
                value: Value::Int(10),
                inclusive: false
            })
        );
        assert!(r.tighten_hi(Value::Int(90), true));
        assert!(r.tighten_hi(Value::Int(80), false));
        assert_eq!(
            r.hi,
            Some(RangeBound {
                value: Value::Int(80),
                inclusive: false
            })
        );
        // Mixed types are not intersectable.
        assert!(!r.tighten_lo(Value::Str("a".into()), true));
    }

    #[test]
    fn literal_range_containment() {
        // [10, 90] contains [20, 80] (the BETWEEN subsumption example).
        let wide = lit_range(Some((10, true)), Some((90, true)));
        let narrow = lit_range(Some((20, true)), Some((80, true)));
        assert!(wide.contains(&narrow));
        assert!(!narrow.contains(&wide));
        // [50, inf) contains (50, inf) but not vice versa (equal-boundary
        // inclusivity: every v > 50 satisfies v >= 50; v = 50 does not
        // satisfy v > 50).
        let ge = lit_range(Some((50, true)), None);
        let gt = lit_range(Some((50, false)), None);
        assert!(ge.contains(&gt));
        assert!(!gt.contains(&ge));
        // Unbounded contains everything; bounded never contains unbounded.
        assert!(LiteralRange::unbounded("v").contains(&wide));
        assert!(!wide.contains(&LiteralRange::unbounded("v")));
        // Incomparable bounds are conservatively not contained.
        let s = LiteralRange {
            column: "v".into(),
            lo: Some(RangeBound {
                value: Value::Str("a".into()),
                inclusive: true,
            }),
            hi: None,
        };
        assert!(!s.contains(&ge));
        assert!(!ge.contains(&s));
    }

    #[test]
    fn literal_range_equality_requires_matching_inclusivity() {
        let ge = lit_range(Some((50, true)), None);
        let gt = lit_range(Some((50, false)), None);
        assert!(ge.same_interval(&ge.clone()));
        assert!(!ge.same_interval(&gt));
        // Int/Float bounds with equal SQL value compare equal.
        let ge_f = LiteralRange {
            column: "v".into(),
            lo: Some(RangeBound {
                value: Value::Float(50.0),
                inclusive: true,
            }),
            hi: None,
        };
        assert!(ge.same_interval(&ge_f));
    }
}
