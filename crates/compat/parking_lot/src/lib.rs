//! `parking_lot`-shaped wrappers over `std::sync` primitives.
//!
//! The real parking_lot is unavailable offline; callers only rely on the
//! non-poisoning `lock()`/`read()`/`write()` API, so these wrappers simply
//! clear poison instead of propagating it (a panicking thread while
//! holding the lock aborts the invariant anyway in this codebase's usage).

#![forbid(unsafe_code)]
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}
