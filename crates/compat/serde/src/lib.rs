//! Minimal API-surface stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives and defines the
//! marker traits under the same names so both the macro and trait
//! namespaces resolve. See `serde_derive`'s crate docs for why this exists.

#![forbid(unsafe_code)]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
