//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds in an offline environment with no cargo registry,
//! so `#[derive(Serialize, Deserialize)]` must resolve without pulling in
//! the real proc-macro crate (which needs `syn`/`quote`). Nothing in the
//! workspace serializes through serde yet — the derives only mark types as
//! wire-ready for a future PR — so emitting no impls is sufficient. When
//! real serialization lands, these expansions grow with it.

#![forbid(unsafe_code)]
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
