//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! Implements exactly the API surface the workspace uses — `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, `Rng::random`, and
//! `Rng::random_range` over integer and float ranges — on top of
//! xoshiro256++ with a SplitMix64 seeder (the same construction rand's
//! `SmallRng` uses). Being a different generator than the real `StdRng`
//! (ChaCha12) is fine: all workspace callers treat the stream as an
//! arbitrary deterministic source, never as a cross-crate fixture.

#![forbid(unsafe_code)]
use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

/// Mirror of `rand::SeedableRng`, reduced to the one constructor used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by `Rng::random`.
pub trait Standard: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Ranges that can be sampled uniformly by `RngExt::random_range`.
/// Generic over the output type so untyped integer literals infer from
/// the call site, matching real rand's `SampleRange<T>`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe raw-word source backing the generic helpers.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Mirror of `rand::Rng`; usable as a generic bound. The sampling
/// methods live on [`RngExt`], matching how the workspace imports them.
pub trait Rng: RngCore {}

impl<T: RngCore> Rng for T {}

/// Extension trait carrying the sampling methods (`rand` 0.9 style).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// xoshiro256++ generator standing in for `rand::rngs::StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, per Blackman & Vigna's reference seeding.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

/// Uniform draw from `[0, n)` by widening multiply (Lemire's method,
/// without the rejection step — the sub-ULP bias is irrelevant here).
fn below(rng: &mut dyn RngCore, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let wide_span = end as i128 - start as i128 + 1;
                if wide_span > u64::MAX as i128 {
                    // Full-width range: every value of the type is valid,
                    // so a raw draw is already uniform (the truncated span
                    // would overflow to 0 and degenerate to `start`).
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, wide_span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Rounding can land exactly on `end` when ulp(end) exceeds the
        // sampled offset; clamp to keep the half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::RngExt as _;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let f = rng.random_range(0.001f64..0.02);
            assert!((0.001..0.02).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
