//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no cargo registry access, so this crate
//! re-implements the subset of proptest's API the workspace's property
//! tests use: `Strategy` with `prop_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, `Just`, weighted `prop_oneof!`,
//! `collection::vec`, `option::of`, `any::<bool>()`, simple
//! character-class regex string strategies, and the `proptest!` test
//! macro with `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for the offline shim:
//!
//! * **Minimal shrinking.** On a failing case the `proptest!` runner
//!   greedily probes each argument's [`Strategy::shrink`] candidates
//!   (integer ranges shrink toward their lower bound, `collection::vec`
//!   halves its length, regex strings drop repetitions and lower each
//!   character to its class minimum, `prop_oneof!` unions forward to
//!   every branch whose range covers the value, and `boxed()` preserves
//!   the inner strategy's shrinker) with the panic hook silenced, prints
//!   the minimal failing input it converged on, and re-runs it uncaught
//!   so the real assertion message fails the test. Strategies without a
//!   `shrink` override (maps) report the original value. The run is
//!   deterministic (fixed per-case seeds), so any failure is
//!   reproducible by re-running the test.
//! * **Regex strategies** support only the subset the tests use:
//!   sequences of literal characters and `[...]` classes (with `a-z`
//!   ranges), each optionally quantified by `{m,n}`, `{n}`, `?`, `*`, `+`.

#![forbid(unsafe_code)]
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use rand::{RngCore, RngExt, SeedableRng};

/// Deterministic RNG handed to strategies during generation.
pub struct TestRng(rand::StdRng);

impl TestRng {
    pub fn from_case(test_name: &str, case: u32) -> Self {
        // Stable per-test stream: FNV-1a over the test name, mixed with
        // the case index so every case draws a fresh but reproducible seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(rand::StdRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.random_range(0..n.max(1))
    }
}

/// Run-length configuration; mirrors `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Mirror of `proptest::strategy::Strategy`, reduced to generation.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing value, most aggressive
    /// first. The default is no candidates: shrinking simply keeps the
    /// original failing input. Implementations must only return values
    /// the strategy itself could have generated.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let shrinker = self.clone();
        BoxedStrategy {
            generate: Arc::new(move |rng| self.generate(rng)),
            shrink: Arc::new(move |v| shrinker.shrink(v)),
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// levels below and returns the strategy for one level up. `depth`
    /// bounds nesting; the size/branch hints are accepted for API parity
    /// but unused.
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Keep leaves likelier than recursion so expected size stays
            // small even at full depth.
            current = Union::new(vec![(3, self.clone().boxed()), (2, deeper)]).boxed();
        }
        current
    }
}

type Generator<T> = Arc<dyn Fn(&mut TestRng) -> T>;
type Shrinker<T> = Arc<dyn Fn(&T) -> Vec<T>>;

/// Type-erased strategy; `Arc` so recursive closures can clone it freely.
/// Boxing preserves the inner strategy's shrinker, so `prop_oneof!`
/// branches and recursive strategies still simplify failing inputs.
pub struct BoxedStrategy<T> {
    generate: Generator<T>,
    shrink: Shrinker<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            generate: Arc::clone(&self.generate),
            shrink: Arc::clone(&self.shrink),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies; target of `prop_oneof!`.
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            branches: self.branches.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        let total = branches.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Self { branches, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (weight, branch) in &self.branches {
            if pick < *weight {
                return branch.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weight bookkeeping out of sync")
    }
    /// The union does not know which branch produced the failing value,
    /// so it concatenates every branch's candidates. Branch shrinkers
    /// return nothing for values outside their own output range (the
    /// integer-range shrinker guards both bounds), so foreign values
    /// simply contribute no candidates.
    fn shrink(&self, value: &T) -> Vec<T> {
        let mut out = Vec::new();
        for (_, branch) in &self.branches {
            out.extend(branch.shrink(value));
        }
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
            /// Shrink toward the range's lower bound: the bound itself,
            /// then the midpoint (halving the distance), then one step
            /// down — a binary descent to the smallest failing value.
            /// Values outside the range (a `prop_oneof!` sibling branch
            /// asking on behalf of the union) contribute no candidates.
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                if *v <= lo || *v >= self.end {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = ((lo as i128 + *v as i128) / 2) as $t;
                if mid != lo && mid != *v {
                    out.push(mid);
                }
                let dec = *v - 1;
                if dec != lo && dec != mid {
                    out.push(dec);
                }
                out
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// Floats generate but do not shrink: there is no useful "one step down".
impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.0.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Inclusive-lo, exclusive-hi element-count range for `collection::vec`.
#[derive(Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    use super::*;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        /// Shrink by halving the length (never below the size range's
        /// lower bound), then by dropping the last element.
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            if v.len() > self.size.lo {
                let half = (v.len() / 2).max(self.size.lo);
                if half < v.len() {
                    out.push(v[..half].to_vec());
                }
                if v.len() - 1 != half {
                    out.push(v[..v.len() - 1].to_vec());
                }
            }
            out
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::*;

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default: Some three times out of four.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

// ---------------------------------------------------------------------------
// Mini-regex string strategies: `"[a-c]{0,6}"` etc.
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum RegexAtom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Clone)]
struct RegexPart {
    atom: RegexAtom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<RegexPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut ranges = Vec::new();
            let mut j = i + 1;
            assert!(
                j >= close || chars[j] != '^',
                "negated class in pattern {pattern:?}: the shim does not \
                 support [^...]"
            );
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    ranges.push((chars[j], chars[j + 2]));
                    j += 3;
                } else {
                    ranges.push((chars[j], chars[j]));
                    j += 1;
                }
            }
            i = close + 1;
            RegexAtom::Class(ranges)
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                // Fail fast on regex features the shim doesn't implement,
                // instead of silently generating the metachar literally.
                assert!(
                    !matches!(chars[i], '|' | '.' | '(' | ')' | '^' | '$'),
                    "unsupported regex metachar {:?} in pattern {pattern:?} \
                     (shim supports literals, [...] classes, and quantifiers); \
                     escape it with \\\\ for a literal",
                    chars[i]
                );
                chars[i]
            };
            i += 1;
            RegexAtom::Literal(c)
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("bad {m,n} lower bound"),
                    hi.parse().expect("bad {m,n} upper bound"),
                ),
                None => {
                    let n = body.parse().expect("bad {n} count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        parts.push(RegexPart { atom, min, max });
    }
    parts
}

fn atom_matches(atom: &RegexAtom, c: char) -> bool {
    match atom {
        RegexAtom::Literal(l) => *l == c,
        RegexAtom::Class(ranges) => ranges.iter().any(|(lo, hi)| (*lo..=*hi).contains(&c)),
    }
}

/// The smallest character an atom can produce: the shrink target for
/// character substitution.
fn atom_min(atom: &RegexAtom) -> char {
    match atom {
        RegexAtom::Literal(l) => *l,
        RegexAtom::Class(ranges) => ranges
            .iter()
            .map(|(lo, _)| *lo)
            .min()
            .expect("empty character class"),
    }
}

/// Backtracking match of `chars` against `parts`: per-part repetition
/// counts such that consuming `counts[i]` matching characters for each
/// part exactly exhausts the input. Greedy (longest repetition first),
/// backing off when a later part cannot match. `None` when the value
/// could not have come from this pattern — e.g. a `prop_oneof!` sibling
/// branch asking on behalf of the union.
fn match_parts(parts: &[RegexPart], chars: &[char]) -> Option<Vec<usize>> {
    fn go(parts: &[RegexPart], chars: &[char], counts: &mut Vec<usize>) -> bool {
        let Some((part, rest)) = parts.split_first() else {
            return chars.is_empty();
        };
        let cap = part.max.min(chars.len());
        for n in (part.min..=cap).rev() {
            if chars[..n].iter().all(|c| atom_matches(&part.atom, *c)) {
                counts.push(n);
                if go(rest, &chars[n..], counts) {
                    return true;
                }
                counts.pop();
            }
        }
        false
    }
    let mut counts = Vec::with_capacity(parts.len());
    go(parts, chars, &mut counts).then_some(counts)
}

/// `&str` patterns are strategies producing matching `String`s, mirroring
/// proptest's regex support (restricted to the subset documented above).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let count = part.min + rng.below(part.max - part.min + 1);
            for _ in 0..count {
                match &part.atom {
                    RegexAtom::Literal(c) => out.push(*c),
                    RegexAtom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len())];
                        let span = hi as u32 - lo as u32 + 1;
                        let c = char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                            .expect("char class range produced invalid scalar");
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Shrink a matching string three ways, most aggressive first: each
    /// over-minimum part collapses to its minimum repetition count, then
    /// sheds one repetition, then every character steps down to its
    /// atom's smallest producible character. Values that do not match
    /// the pattern contribute no candidates.
    fn shrink(&self, v: &String) -> Vec<String> {
        let parts = parse_pattern(self);
        let chars: Vec<char> = v.chars().collect();
        let Some(counts) = match_parts(&parts, &chars) else {
            return Vec::new();
        };
        // Segment offsets: part `i` owns `chars[offsets[i]..offsets[i+1]]`.
        let mut offsets = vec![0usize];
        for n in &counts {
            offsets.push(offsets[offsets.len() - 1] + n);
        }
        let rebuild = |segs: &[&[char]]| -> String { segs.concat().into_iter().collect() };
        let mut out = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            if counts[i] > part.min {
                let seg = &chars[offsets[i]..offsets[i + 1]];
                out.push(rebuild(&[
                    &chars[..offsets[i]],
                    &seg[..part.min],
                    &chars[offsets[i + 1]..],
                ]));
                if counts[i] - 1 > part.min {
                    out.push(rebuild(&[
                        &chars[..offsets[i]],
                        &seg[..counts[i] - 1],
                        &chars[offsets[i + 1]..],
                    ]));
                }
            }
        }
        for (i, part) in parts.iter().enumerate() {
            let target = atom_min(&part.atom);
            for j in offsets[i]..offsets[i + 1] {
                if chars[j] != target {
                    let mut next = chars.clone();
                    next[j] = target;
                    out.push(next.into_iter().collect());
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted (`w => strat`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Assertion inside `proptest!` bodies; panics (fails the case) on false.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// On a failing case the runner shrinks greedily: each argument's
/// [`Strategy::shrink`] candidates are probed (panic hook silenced, body
/// re-run under `catch_unwind`) and a candidate that still fails replaces
/// the argument, until no candidate fails or the probe budget runs out.
/// The minimal input is printed to stderr, then re-run uncaught so the
/// original assertion fails the test. Argument types must be `Clone` (to
/// re-run the body) and `Debug` (to print the minimal input).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut prop_rng =
                        $crate::TestRng::from_case(stringify!($name), case);
                    $(
                        #[allow(unused_mut)]
                        let mut $arg = $crate::Strategy::generate(&$strategy, &mut prop_rng);
                    )+
                    // Clones the current arguments and runs the body,
                    // reporting whether it passed. Defined as a local
                    // macro so the shrink loop below can re-check with
                    // one argument swapped out.
                    macro_rules! __prop_check {
                        () => {
                            ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                                $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                                $body
                            }))
                            .is_ok()
                        };
                    }
                    if __prop_check!() {
                        continue;
                    }
                    // Failing case: shrink with the panic hook silenced so
                    // the probe runs don't spam per-candidate backtraces.
                    let __prop_hook = ::std::panic::take_hook();
                    ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                    let mut __prop_budget: u32 = 512;
                    loop {
                        let mut __prop_improved = false;
                        $(
                            loop {
                                let mut __prop_advanced = false;
                                for cand in $crate::Strategy::shrink(&$strategy, &$arg) {
                                    if __prop_budget == 0 {
                                        break;
                                    }
                                    __prop_budget -= 1;
                                    let prev = ::std::mem::replace(&mut $arg, cand);
                                    if __prop_check!() {
                                        $arg = prev; // candidate passes; keep the failure
                                    } else {
                                        __prop_advanced = true;
                                        __prop_improved = true;
                                        break;
                                    }
                                }
                                if !__prop_advanced || __prop_budget == 0 {
                                    break;
                                }
                            }
                        )+
                        if !__prop_improved || __prop_budget == 0 {
                            break;
                        }
                    }
                    ::std::panic::set_hook(__prop_hook);
                    ::std::eprintln!(
                        concat!(
                            "proptest shim: ",
                            stringify!($name),
                            " failed (case {}); minimal failing input:"
                        ),
                        case
                    );
                    $(::std::eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    // Re-run the minimal input uncaught: the original
                    // assertion message fails the test.
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_case("shim_self_test", 0)
    }

    #[test]
    fn regex_class_with_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{0,6}".generate(&mut r);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn regex_literal_dash_and_specials() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-cAIM%_-]{0,5}".generate(&mut r);
            assert!(s.len() <= 5);
            assert!(
                s.chars()
                    .all(|c| ('a'..='c').contains(&c) || "AIM%_-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn union_respects_zero_pick_edge() {
        let mut r = rng();
        let u = prop_oneof![3 => Just(1i32), 1 => Just(2i32)];
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[(u.generate(&mut r) - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_and_option_sizes() {
        let mut r = rng();
        for _ in 0..200 {
            let v = collection::vec(0i64..5, 1..4).generate(&mut r);
            assert!((1..4).contains(&v.len()));
            let _ = option::of(0i64..5).generate(&mut r);
        }
    }

    #[test]
    fn integer_ranges_shrink_toward_lo() {
        let s = 10i64..100;
        let c = s.shrink(&77);
        assert_eq!(c[0], 10, "lower bound is the most aggressive candidate");
        assert!(c.iter().all(|v| (10..77).contains(v)), "{c:?}");
        assert!(s.shrink(&10).is_empty(), "the bound itself has no shrink");
    }

    #[test]
    fn vec_shrink_halves_within_size_bounds() {
        let s = collection::vec(0i64..5, 2..10);
        let v = vec![0, 1, 2, 3, 4, 0, 1, 2];
        let c = s.shrink(&v);
        assert!(c.iter().any(|w| w.len() == 4), "halving candidate missing");
        assert!(
            c.iter().any(|w| w.len() == 7),
            "drop-last candidate missing"
        );
        assert!(c.iter().all(|w| (2..v.len()).contains(&w.len())), "{c:?}");
        assert!(s.shrink(&vec![0, 1]).is_empty(), "at the size floor");
    }

    #[test]
    fn runner_shrinks_to_minimal_input_and_rethrows() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            fn failing_prop(x in 0i64..1000, pad in collection::vec(0i64..5, 1..6)) {
                let _ = &pad;
                if x >= 50 {
                    panic!("boom at {x}");
                }
            }
        }
        let err =
            std::panic::catch_unwind(failing_prop).expect_err("the property fails for x >= 50");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the formatted message");
        // Greedy binary descent must land exactly on the smallest
        // failing value before re-running it uncaught.
        assert_eq!(msg, "boom at 50");
    }

    #[test]
    fn union_shrink_concatenates_covering_branches() {
        let u = prop_oneof![50i64..1000, 50i64..600];
        // 700 is outside the second branch, which must stay silent.
        let c = u.shrink(&700);
        assert_eq!(c, vec![50, 375, 699]);
        // 300 is inside both branches: both contribute the same descent.
        let c = u.shrink(&300);
        assert_eq!(c, vec![50, 175, 299, 50, 175, 299]);
        assert!(u.shrink(&50).is_empty());
    }

    #[test]
    fn runner_shrinks_through_a_union_to_the_smallest_branch_bound() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            fn failing_union_prop(x in prop_oneof![50i64..1000, 50i64..600]) {
                if x >= 50 {
                    panic!("boom at {x}");
                }
            }
        }
        let err = std::panic::catch_unwind(failing_union_prop)
            .expect_err("the property fails for every generated value");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the formatted message");
        assert_eq!(msg, "boom at 50");
    }

    #[test]
    fn string_shrink_reduces_reps_and_characters() {
        let s = "[a-c]{2,8}";
        let c = s.shrink(&"cbcb".to_string());
        // Collapse-to-min first, then drop-one, then char descents.
        assert_eq!(c[0], "cb");
        assert_eq!(c[1], "cbc");
        assert!(c.contains(&"abcb".to_string()), "{c:?}");
        assert!(s.shrink(&"aa".to_string()).is_empty(), "minimal already");
        assert!(
            s.shrink(&"zz".to_string()).is_empty(),
            "foreign value contributes no candidates"
        );
    }

    #[test]
    fn runner_shrinks_strings_to_the_minimal_failing_form() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            fn failing_string_prop(s in "[a-c]{2,8}") {
                if s.len() >= 3 {
                    panic!("boom on {s:?}");
                }
            }
        }
        let err = std::panic::catch_unwind(failing_string_prop)
            .expect_err("the property fails for len >= 3");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the formatted message");
        assert_eq!(msg, "boom on \"aaa\"");
    }

    #[test]
    fn runner_shrinks_a_statement_pattern_to_the_minimal_statement() {
        // The SQL robustness suite draws whole statements from patterns
        // like this one; a failure must come back as the least noisy
        // statement that still trips the property.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn failing_stmt_prop(s in "SELECT [a-z]{1,8} FROM t") {
                panic!("stmt {s:?}");
            }
        }
        let err =
            std::panic::catch_unwind(failing_stmt_prop).expect_err("the property always fails");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the formatted message");
        assert_eq!(msg, "stmt \"SELECT a FROM t\"");
    }

    #[test]
    fn boxed_strategies_preserve_the_inner_shrinker() {
        let b = (10i64..100).boxed();
        assert_eq!(b.shrink(&77), (10i64..100).shrink(&77));
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => usize::from((0..10).contains(v)),
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut r)) <= 4);
        }
    }
}
