//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no cargo registry access, so this crate
//! implements the subset of criterion's API the workspace benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine, each benchmark runs a
//! configurable warm-up then a fixed number of timed samples and reports
//! **variance-aware** summary statistics: the median per-iteration wall
//! time plus the median absolute deviation (MAD) and a MAD-derived ±
//! interval, so a noisy host is visible in the output instead of hiding
//! behind a single point estimate. That keeps `cargo bench` usable for
//! coarse comparisons and keeps `cargo bench --no-run` a faithful compile
//! check. Honor criterion's `--test` flag (emitted by `cargo bench --
//! --test` and CI smoke runs) by executing each benchmark exactly once.
//!
//! Knobs (also used by the `reproduce` snapshot emitter):
//! * `SNOWPRUNE_BENCH_SAMPLES` — timed samples per benchmark (default 30).
//! * `SNOWPRUNE_BENCH_WARMUP_MS` — warm-up budget per benchmark in
//!   milliseconds (default 50).

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 30;
/// Default warm-up budget per benchmark.
pub const DEFAULT_WARMUP_MS: u64 = 50;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(default)
}

/// Top-level harness handle, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: env_usize("SNOWPRUNE_BENCH_SAMPLES", DEFAULT_SAMPLES),
            warmup: Duration::from_millis(env_usize(
                "SNOWPRUNE_BENCH_WARMUP_MS",
                DEFAULT_WARMUP_MS as usize,
            ) as u64),
            test_mode,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warmup: self.warmup,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            "",
            &id.into(),
            self.sample_size,
            self.warmup,
            self.test_mode,
            f,
        );
        self
    }

    /// Override the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Override the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warmup: Duration,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Override the warm-up budget for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.warmup,
            self.test_mode,
            f,
        );
        self
    }

    /// Finish the group (no-op; criterion-API parity).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    warmup: Duration,
}

impl Bencher {
    /// Time `routine`: warm up for the configured budget, calibrate
    /// iterations per sample so one sample costs ~1ms, then record the
    /// configured number of per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the budget is spent (at least once), which
        // also calibrates iterations per sample. A slow routine still
        // completes promptly with a single iteration per sample.
        let warm_start = Instant::now();
        let start = Instant::now();
        black_box(routine());
        let mut once = start.elapsed().max(Duration::from_nanos(1));
        while warm_start.elapsed() < self.warmup {
            let start = Instant::now();
            black_box(routine());
            once = (once + start.elapsed().max(Duration::from_nanos(1))) / 2;
        }
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Variance-aware summary of one benchmark's samples.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Median per-iteration time.
    pub median: Duration,
    /// Median absolute deviation around the median — a robust spread
    /// estimate that one outlier sample cannot blow up.
    pub mad: Duration,
    /// Samples recorded.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

impl SampleStats {
    /// Compute median + MAD from raw samples (`None` when empty).
    pub fn from_samples(samples: &mut [Duration], iters: u64) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let mut devs: Vec<Duration> = samples.iter().map(|&s| s.abs_diff(median)).collect();
        devs.sort();
        let mad = devs[devs.len() / 2];
        Some(SampleStats {
            median,
            mad,
            samples: samples.len(),
            iters,
        })
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    warmup: Duration,
    test_mode: bool,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count: if test_mode { 0 } else { sample_size },
        warmup: if test_mode { Duration::ZERO } else { warmup },
    };
    f(&mut bencher);
    if test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    match SampleStats::from_samples(&mut bencher.samples, bencher.iters_per_sample) {
        None => println!("{label}: no samples recorded"),
        Some(st) => println!(
            "{label}: median {:?} ± {:?} (MAD) over {} samples x {} iters",
            st.median, st.mad, st.samples, st.iters
        ),
    }
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_median_and_mad() {
        let mut samples: Vec<Duration> = [10u64, 12, 11, 50, 10]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        let st = SampleStats::from_samples(&mut samples, 3).unwrap();
        assert_eq!(st.median, Duration::from_millis(11));
        // Deviations: 1, 1, 0, 39, 1 → sorted 0,1,1,1,39 → MAD 1.
        assert_eq!(st.mad, Duration::from_millis(1));
        assert_eq!(st.samples, 5);
        assert_eq!(st.iters, 3);
    }

    #[test]
    fn stats_empty_is_none() {
        assert!(SampleStats::from_samples(&mut [], 1).is_none());
    }
}
