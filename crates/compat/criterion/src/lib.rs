//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no cargo registry access, so this crate
//! implements the subset of criterion's API the workspace benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine, each benchmark runs a short
//! warm-up then a fixed number of timed samples and reports the median
//! per-iteration wall time. That keeps `cargo bench` usable for coarse
//! comparisons and keeps `cargo bench --no-run` a faithful compile check.
//! Honor criterion's `--test` flag (emitted by `cargo bench -- --test`
//! and CI smoke runs) by executing each benchmark exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 30,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one("", &id.into(), sample_size, test_mode, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.test_mode, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate iterations per sample so one sample costs ~1ms but a
        // slow routine still completes promptly with a single iteration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count: if test_mode { 0 } else { sample_size },
    };
    f(&mut bencher);
    if test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{label}: median {median:?} over {} samples x {} iters",
        bencher.samples.len(),
        bencher.iters_per_sample
    );
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
