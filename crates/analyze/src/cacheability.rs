//! Engine-invariant checks: §8.2 cache-shape eligibility with
//! explanations, provenance preservation on cacheable spines, and
//! zone-map conjunct detection for scan predicates.
//!
//! [`explain_cacheability`] mirrors the executor's private admission
//! function (`cacheable_shape` in `snowprune-exec`) decision-for-decision
//! — the executor debug-asserts agreement on every query it runs, so the
//! two cannot drift silently — and additionally records *why* each plan
//! is or isn't eligible, which surfaces through `ExecReport`.

use snowprune_expr::Expr;
use snowprune_plan::{detect_topk, Plan, TopKShape};
use snowprune_types::{DiagCode, Diagnostic};

/// Which §8.2 cache shape a plan matches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheShape {
    /// A top-k spine: the heap records survivor partitions of
    /// `order_column` on `table`.
    TopK {
        /// Table whose scan the cached contributor set restricts.
        table: String,
        /// The ORDER BY column driving the boundary.
        order_column: String,
    },
    /// A filtered chain (or filtered aggregation input): filter survivors
    /// of `table` are the replay set.
    Filter {
        /// Table whose scan the cached contributor set restricts.
        table: String,
    },
}

/// Structured "why is/isn't this plan cacheable" report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheReport {
    /// The matched cache shape, or `None` when the plan is not cacheable.
    pub shape: Option<CacheShape>,
    /// Human-readable reasons backing the decision (never empty).
    pub reasons: Vec<String>,
}

impl CacheReport {
    /// True when the plan is eligible for the predicate cache.
    pub fn is_cacheable(&self) -> bool {
        self.shape.is_some()
    }

    fn cacheable(shape: CacheShape, reason: impl Into<String>) -> Self {
        CacheReport {
            shape: Some(shape),
            reasons: vec![reason.into()],
        }
    }

    fn not_cacheable(reason: impl Into<String>) -> Self {
        CacheReport {
            shape: None,
            reasons: vec![reason.into()],
        }
    }
}

/// Explain a plan's §8.2 cache-shape eligibility. `topk_enabled` must be
/// the executor's `enable_topk_pruning` flag: only the boundary-heap
/// execution path records survivor provenance, so disabling top-k pruning
/// disables top-k caching with it.
pub fn explain_cacheability(plan: &Plan, topk_enabled: bool) -> CacheReport {
    if let Some(spec) = detect_topk(plan) {
        if !topk_enabled {
            return CacheReport::not_cacheable(
                "top-k pruning is disabled: only the boundary-heap execution path \
                 records survivor provenance, so there is nothing to cache",
            );
        }
        return match spec.shape {
            TopKShape::AboveScan => CacheReport::cacheable(
                CacheShape::TopK {
                    table: spec.target_table.clone(),
                    order_column: spec.order_column.clone(),
                },
                format!(
                    "top-k above a scan of `{}`: the heap records each survivor's \
                     source partition (plus boundary ties) exactly",
                    spec.target_table
                ),
            ),
            TopKShape::JoinProbeSide | TopKShape::OuterJoinBuildSide => {
                if count_scans_of(plan, &spec.target_table) == 1 {
                    CacheReport::cacheable(
                        CacheShape::TopK {
                            table: spec.target_table.clone(),
                            order_column: spec.order_column.clone(),
                        },
                        format!(
                            "top-k through a join: joined rows carry `{}`-side partition \
                             provenance and the table is scanned exactly once; the other \
                             side's tables become auxiliary version dependencies",
                            spec.target_table
                        ),
                    )
                } else {
                    CacheReport::not_cacheable(format!(
                        "target table `{}` is scanned more than once (self-join): a warm \
                         replay restricting every scan to one side's contributors would \
                         be unsound",
                        spec.target_table
                    ))
                }
            }
            TopKShape::AboveAggregation => CacheReport::not_cacheable(
                "top-k above GROUP BY: distinct-key filtering drops rows before the \
                 heap sees them, so survivors are not partition-attributable",
            ),
        };
    }
    // Non-top-k shapes: a Filter*/Project* chain over one scan, optionally
    // under an aggregation, caches the scan's filter survivors.
    if let Plan::Aggregate { input, .. } = plan {
        return match chain_scan(input) {
            Some((table, Some(_))) => CacheReport::cacheable(
                CacheShape::Filter {
                    table: table.to_owned(),
                },
                format!(
                    "filtered aggregation over one scan of `{table}`: the aggregate \
                     folds exactly the chain's output rows, so the scan's filter \
                     survivors replay the whole aggregation"
                ),
            ),
            Some((table, None)) => CacheReport::not_cacheable(format!(
                "aggregation over an unpredicated scan of `{table}`: every partition \
                 contributes, so a cached contributor set could never restrict the scan"
            )),
            None => CacheReport::not_cacheable(
                "aggregation input is not a Filter/Project chain over a single scan \
                 (joins or nested aggregates in between)",
            ),
        };
    }
    match chain_scan(plan) {
        Some((table, Some(_))) => CacheReport::cacheable(
            CacheShape::Filter {
                table: table.to_owned(),
            },
            format!(
                "filtered chain over one scan of `{table}`: partitions that emitted a \
                 selected row are recorded as the replay set"
            ),
        ),
        Some((table, None)) => CacheReport::not_cacheable(format!(
            "unpredicated scan of `{table}`: every partition contributes, so there is \
             nothing a replay could skip"
        )),
        None => {
            if bare_limit(plan) {
                CacheReport::not_cacheable(
                    "LIMIT without ORDER BY: the result is legally nondeterministic \
                     (early stop), so the contributing set is timing-dependent",
                )
            } else {
                CacheReport::not_cacheable(
                    "plan shape is not a (possibly aggregated) Filter/Project chain \
                     over a single scan and not a prunable top-k spine",
                )
            }
        }
    }
}

/// Diagnostics derived from the cacheability report: one Info explaining
/// the decision, plus a Warning when a would-be-cacheable join-top-k spine
/// loses provenance to a repeated target scan.
pub fn cacheability_diags(plan: &Plan, report: &CacheReport, path: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match &report.shape {
        Some(_) => out.push(Diagnostic::info(
            DiagCode::Cacheable,
            path,
            report.reasons.join("; "),
        )),
        None => {
            out.push(Diagnostic::info(
                DiagCode::NotCacheable,
                path,
                report.reasons.join("; "),
            ));
            // A top-k spine that classifies but scans its target twice has
            // *severed provenance* — worth a warning, because the plan
            // author probably expected it to cache.
            if let Some(spec) = detect_topk(plan) {
                if matches!(
                    spec.shape,
                    TopKShape::JoinProbeSide | TopKShape::OuterJoinBuildSide
                ) && count_scans_of(plan, &spec.target_table) != 1
                {
                    out.push(Diagnostic::warning(
                        DiagCode::ProvenanceNotAttributable,
                        path,
                        format!(
                            "top-k spine targets `{}`, but the plan scans it {} times: \
                             row provenance cannot be attributed to a single scan",
                            spec.target_table,
                            count_scans_of(plan, &spec.target_table)
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Zone-map eligibility of a scan predicate: an Info counting how many
/// conjuncts the zone-map pruner can definitely evaluate, plus a Warning
/// when none can (filter pruning will not skip any partition).
///
/// The detection is a *conservative* proxy for
/// `snowprune_expr::pruneval`: a conjunct counts as eligible when it is a
/// single-column comparison/pattern/membership test — shapes whose
/// min/max range derivation is exact. Multi-column conjuncts may still
/// prune imprecisely at runtime; they are simply not counted here.
pub fn zone_map_diags(predicate: &Expr, path: &str) -> Vec<Diagnostic> {
    let conjuncts = predicate.split_conjunction();
    let total = conjuncts.len();
    let eligible = conjuncts.iter().filter(|c| conjunct_eligible(c)).count();
    let mut out = vec![Diagnostic::info(
        DiagCode::ZoneMapEligibility,
        path,
        format!("{eligible} of {total} conjuncts support exact zone-map evaluation"),
    )];
    if eligible == 0 {
        out.push(Diagnostic::warning(
            DiagCode::NoPrunableConjunct,
            path,
            "no conjunct of this scan predicate is zone-map eligible: filter \
             pruning cannot skip any partition for this scan",
        ));
    }
    out
}

/// Is this conjunct a shape the zone-map evaluator handles exactly?
fn conjunct_eligible(e: &Expr) -> bool {
    match e {
        Expr::Cmp(_, a, b) => matches!(
            (a.as_ref(), b.as_ref()),
            (Expr::Column(_), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(_))
                if !v.is_null()
        ),
        Expr::Like(x, _) | Expr::StartsWith(x, _) => matches!(x.as_ref(), Expr::Column(_)),
        Expr::InList(x, vals) => matches!(x.as_ref(), Expr::Column(_)) && !vals.is_empty(),
        Expr::IsNull(x) => matches!(x.as_ref(), Expr::Column(_)),
        Expr::Not(x) => conjunct_eligible(x),
        _ => false,
    }
}

/// The scan at the bottom of a Filter*/Project* chain, with its pushed
/// predicate. Mirrors the executor's `split_chain`: only the **scan's
/// own** predicate counts toward cacheability (plan construction pushes
/// filters into scans; a stray `Filter` node above an unpredicated scan
/// records nothing).
fn chain_scan(plan: &Plan) -> Option<(&str, Option<&Expr>)> {
    match plan {
        Plan::Scan {
            table, predicate, ..
        } => Some((table.as_str(), predicate.as_ref())),
        Plan::Filter { input, .. } | Plan::Project { input, .. } => chain_scan(input),
        _ => None,
    }
}

fn count_scans_of(plan: &Plan, table: &str) -> usize {
    let mut n = 0;
    plan.visit(&mut |p| {
        if let Plan::Scan { table: t, .. } = p {
            if t == table {
                n += 1;
            }
        }
    });
    n
}

fn bare_limit(plan: &Plan) -> bool {
    matches!(plan, Plan::Limit { input, .. } if !matches!(input.as_ref(), Plan::Sort { .. }))
}
