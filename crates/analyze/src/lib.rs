//! Static plan analysis for `snowprune`: the admission-time verification
//! layer that runs **before** morsel generation.
//!
//! The paper's pruning guarantees (§4 scan-set pruning, §8.2
//! predicate-cache replay) are only sound when every executed plan
//! satisfies preconditions the engine otherwise assumes silently:
//! resolvable columns, Kleene-correct predicate typing, provenance
//! threading on cacheable spines. This crate checks them statically:
//!
//! * **Schema/column resolution and type inference** ([`typecheck`]):
//!   every column reference resolves; comparisons, boolean combinators,
//!   arithmetic, patterns, aggregates, and sort keys are typed under SQL's
//!   three-valued semantics, flagging expressions that are provably
//!   NULL/UNKNOWN on every row.
//! * **Engine-invariant checks** ([`cacheability`]): zone-map-eligible
//!   conjunct detection per scan, provenance preservation on cacheable
//!   spines, and §8.2 cache-shape eligibility with a structured
//!   explanation that surfaces through the executor's `ExecReport`.
//!
//! Findings are typed [`Diagnostic`] values. [`verify`] rejects plans
//! with error-severity findings as
//! [`Error::PlanRejected`]; the
//! executor calls it behind `ExecConfig::verify_plans`
//! (`SNOWPRUNE_VERIFY_PLANS`, default on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cacheability;
pub mod typecheck;

use snowprune_plan::{AggFunc, Plan};
use snowprune_storage::Schema;
use snowprune_types::{Error, Result};

pub use cacheability::{explain_cacheability, CacheReport, CacheShape};
pub use snowprune_types::{DiagCode, Diagnostic, Severity};

/// The result of analyzing one plan.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Every finding, in plan order (errors, warnings, and infos).
    pub diagnostics: Vec<Diagnostic>,
    /// The §8.2 cache-shape eligibility explanation.
    pub cacheability: CacheReport,
}

impl Analysis {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// True when the plan has no error-severity findings.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }
}

/// Analyze a plan with top-k pruning assumed enabled (the default
/// configuration). See [`analyze_with`].
pub fn analyze(plan: &Plan) -> Analysis {
    analyze_with(plan, true)
}

/// Analyze a plan. `topk_enabled` is the executor's
/// `enable_topk_pruning` flag, which gates top-k cache eligibility.
pub fn analyze_with(plan: &Plan, topk_enabled: bool) -> Analysis {
    let mut diags = Vec::new();
    let mut path = Vec::new();
    walk(plan, &mut path, &mut diags);
    let cacheability = explain_cacheability(plan, topk_enabled);
    diags.extend(cacheability::cacheability_diags(
        plan,
        &cacheability,
        &label(plan),
    ));
    Analysis {
        diagnostics: diags,
        cacheability,
    }
}

/// Analyze a plan and reject it when any error-severity diagnostic is
/// found. On success returns the full analysis (warnings and infos
/// included); on failure returns
/// [`Error::PlanRejected`] carrying
/// the error diagnostics.
pub fn verify(plan: &Plan) -> Result<Analysis> {
    verify_with(plan, true)
}

/// [`verify`] with an explicit top-k pruning flag (see [`analyze_with`]).
pub fn verify_with(plan: &Plan, topk_enabled: bool) -> Result<Analysis> {
    let analysis = analyze_with(plan, topk_enabled);
    if analysis.is_clean() {
        Ok(analysis)
    } else {
        Err(Error::PlanRejected(analysis.errors().cloned().collect()))
    }
}

/// Display label of one plan node (path segment).
fn label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, .. } => format!("Scan({table})"),
        Plan::Filter { .. } => "Filter".into(),
        Plan::Project { .. } => "Project".into(),
        Plan::Join { .. } => "Join".into(),
        Plan::Aggregate { .. } => "Aggregate".into(),
        Plan::Sort { .. } => "Sort".into(),
        Plan::Limit { .. } => "Limit".into(),
    }
}

fn path_str(path: &[String], suffix: &str) -> String {
    format!("{}{}", path.join("/"), suffix)
}

/// Bottom-up schema-carrying walk. Returns the node's output schema, or
/// `None` when it could not be resolved (the cause is already reported);
/// downstream checks that need the schema are skipped rather than
/// re-reported.
fn walk(plan: &Plan, path: &mut Vec<String>, diags: &mut Vec<Diagnostic>) -> Option<Schema> {
    path.push(label(plan));
    let schema = walk_inner(plan, path, diags);
    path.pop();
    schema
}

fn walk_inner(plan: &Plan, path: &mut Vec<String>, diags: &mut Vec<Diagnostic>) -> Option<Schema> {
    match plan {
        Plan::Scan {
            schema, predicate, ..
        } => {
            if let Some(pred) = predicate {
                let at = path_str(path, ".predicate");
                typecheck::check_predicate(pred, schema, &at, diags);
                diags.extend(cacheability::zone_map_diags(pred, &at));
            }
            Some(schema.clone())
        }
        Plan::Filter { input, predicate } => {
            let schema = walk(input, path, diags)?;
            typecheck::check_predicate(predicate, &schema, &path_str(path, ".predicate"), diags);
            Some(schema)
        }
        Plan::Project { input, columns } => {
            let schema = walk(input, path, diags)?;
            let mut fields = Vec::with_capacity(columns.len());
            for c in columns {
                match schema.fields().iter().find(|f| &f.name == c) {
                    Some(f) => fields.push(f.clone()),
                    None => diags.push(Diagnostic::error(
                        DiagCode::UnknownColumn,
                        path_str(path, ""),
                        format!("projected column `{c}` is not in the input schema"),
                    )),
                }
            }
            Some(Schema::new(fields))
        }
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            ..
        } => {
            path.push("build".into());
            let bs = walk(build, path, diags);
            path.pop();
            path.push("probe".into());
            let ps = walk(probe, path, diags);
            path.pop();
            let at = path_str(path, "");
            let mut key_field = |schema: &Option<Schema>,
                                 key: &str,
                                 side: &str|
             -> Option<snowprune_types::ScalarType> {
                let s = schema.as_ref()?;
                match s.fields().iter().find(|f| f.name == key) {
                    Some(f) => Some(f.ty),
                    None => {
                        diags.push(Diagnostic::error(
                            DiagCode::UnknownColumn,
                            at.clone(),
                            format!("{side} key `{key}` is not produced by the {side} side"),
                        ));
                        None
                    }
                }
            };
            let bt = key_field(&bs, build_key, "build");
            let pt = key_field(&ps, probe_key, "probe");
            if let (Some(bt), Some(pt)) = (bt, pt) {
                if !bt.comparable_with(pt) {
                    diags.push(Diagnostic::error(
                        DiagCode::JoinKeyMismatch,
                        at,
                        format!(
                            "join keys `{build_key}` ({bt}) and `{probe_key}` ({pt}) can \
                             never compare equal: the join matches no pair"
                        ),
                    ));
                }
            }
            Some(bs?.join(&ps?, "probe_"))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let schema = walk(input, path, diags)?;
            let at = path_str(path, "");
            let mut fields = Vec::new();
            for g in group_by {
                match schema.fields().iter().find(|f| &f.name == g) {
                    Some(f) => fields.push(f.clone()),
                    None => diags.push(Diagnostic::error(
                        DiagCode::UnknownColumn,
                        at.clone(),
                        format!("GROUP BY column `{g}` is not in the input schema"),
                    )),
                }
            }
            for agg in aggs {
                let input_ty = match agg.input_column() {
                    None => None,
                    Some(c) => match schema.fields().iter().find(|f| f.name == c) {
                        Some(f) => Some(f.ty),
                        None => {
                            diags.push(Diagnostic::error(
                                DiagCode::UnknownColumn,
                                at.clone(),
                                format!("aggregate input column `{c}` is not in the input schema"),
                            ));
                            continue;
                        }
                    },
                };
                if let (AggFunc::Sum(c) | AggFunc::Avg(c), Some(ty)) = (agg, input_ty) {
                    if !ty.is_numeric() {
                        diags.push(Diagnostic::error(
                            DiagCode::BadAggregateInput,
                            at.clone(),
                            format!(
                                "{} over non-numeric column `{c}` ({ty})",
                                if matches!(agg, AggFunc::Sum(_)) {
                                    "SUM"
                                } else {
                                    "AVG"
                                },
                            ),
                        ));
                    }
                }
                let out_ty = match agg {
                    AggFunc::CountStar | AggFunc::Count(_) => snowprune_types::ScalarType::Int,
                    AggFunc::Avg(_) => snowprune_types::ScalarType::Float,
                    AggFunc::Sum(_) | AggFunc::Min(_) | AggFunc::Max(_) => {
                        input_ty.unwrap_or(snowprune_types::ScalarType::Int)
                    }
                };
                fields.push(snowprune_storage::Field::new(agg.output_name(), out_ty));
            }
            Some(Schema::new(fields))
        }
        Plan::Sort { input, keys } => {
            let schema = walk(input, path, diags)?;
            if keys.is_empty() {
                diags.push(Diagnostic::error(
                    DiagCode::EmptySortKeys,
                    path_str(path, ""),
                    "Sort with no keys: the output order (and any LIMIT above it) is \
                     unspecified",
                ));
            }
            for (i, key) in keys.iter().enumerate() {
                typecheck::infer(
                    &key.expr,
                    &schema,
                    &path_str(path, &format!(".keys[{i}]")),
                    diags,
                );
            }
            Some(schema)
        }
        Plan::Limit { input, .. } => walk(input, path, diags),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_plan::{JoinType, PlanBuilder, SortKey};
    use snowprune_storage::Field;
    use snowprune_types::ScalarType;

    fn fact() -> Schema {
        Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("b", ScalarType::Int),
            Field::new("c", ScalarType::Str),
        ])
    }

    fn dim() -> Schema {
        Schema::new(vec![
            Field::new("id", ScalarType::Int),
            Field::new("label", ScalarType::Str),
        ])
    }

    #[test]
    fn clean_topk_plan_is_cacheable_with_reason() {
        let p = PlanBuilder::scan("fact", fact())
            .filter(col("b").ge(lit(10i64)))
            .order_by("a", true)
            .limit(5)
            .build();
        let a = analyze(&p);
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        assert!(a.cacheability.is_cacheable());
        assert!(a.diagnostics.iter().any(|d| d.code == DiagCode::Cacheable));
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ZoneMapEligibility));
    }

    #[test]
    fn unknown_filter_column_is_rejected_with_path() {
        let p = PlanBuilder::scan("fact", fact())
            .filter(col("nope").ge(lit(10i64)))
            .build();
        let err = verify(&p).unwrap_err();
        let Error::PlanRejected(ds) = err else {
            panic!("expected PlanRejected");
        };
        assert_eq!(ds[0].code, DiagCode::UnknownColumn);
        assert!(
            ds[0].plan_path.contains("Scan(fact).predicate"),
            "{}",
            ds[0].plan_path
        );
    }

    #[test]
    fn join_key_type_mismatch_is_rejected() {
        let p = PlanBuilder::scan("dim", dim())
            .join(
                PlanBuilder::scan("fact", fact()),
                "label",
                "b",
                JoinType::Inner,
            )
            .build();
        let a = analyze(&p);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::JoinKeyMismatch && d.is_error()));
    }

    #[test]
    fn empty_sort_keys_are_rejected() {
        let p = PlanBuilder::scan("fact", fact())
            .sort(vec![])
            .limit(3)
            .build();
        let a = analyze(&p);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::EmptySortKeys));
    }

    #[test]
    fn unknown_sort_key_is_rejected() {
        let p = PlanBuilder::scan("fact", fact())
            .order_by("zz", false)
            .build();
        let a = analyze(&p);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::UnknownColumn && d.plan_path.contains("Sort.keys[0]")));
    }

    #[test]
    fn sum_over_string_is_rejected() {
        let p = PlanBuilder::scan("fact", fact())
            .aggregate(vec!["a"], vec![snowprune_plan::AggFunc::Sum("c".into())])
            .build();
        let a = analyze(&p);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::BadAggregateInput));
    }

    #[test]
    fn self_join_topk_loses_provenance() {
        // Top-k ordered by a probe-side column where the probe table is
        // also scanned on the build side: classified, but uncacheable.
        let p = PlanBuilder::scan("fact", fact())
            .project(vec!["b"])
            .join(PlanBuilder::scan("fact", fact()), "b", "a", JoinType::Inner)
            .order_by("probe_a", true)
            .limit(3)
            .build();
        let a = analyze(&p);
        // Whether or not this exact shape classifies as a join top-k, it
        // must not be cacheable, and if it classifies the warning fires.
        assert!(!a.cacheability.is_cacheable());
    }

    #[test]
    fn aggregate_over_filtered_chain_explains_cacheable() {
        let p = PlanBuilder::scan("fact", fact())
            .filter(col("a").ge(lit(1i64)))
            .aggregate(vec!["c"], vec![snowprune_plan::AggFunc::CountStar])
            .build();
        let a = analyze(&p);
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        assert_eq!(
            a.cacheability.shape,
            Some(CacheShape::Filter {
                table: "fact".into()
            })
        );
    }

    #[test]
    fn bare_limit_explains_nondeterminism() {
        let p = PlanBuilder::scan("fact", fact())
            .filter(col("a").ge(lit(1i64)))
            .limit(4)
            .build();
        let a = analyze(&p);
        // A predicated chain under a bare LIMIT *is* split by the chain
        // walk in the executor... the LIMIT node itself blocks the chain,
        // so it is not cacheable.
        assert!(!a.cacheability.is_cacheable());
    }

    #[test]
    fn multi_key_sort_checks_every_key() {
        let p = PlanBuilder::scan("fact", fact())
            .sort(vec![
                SortKey {
                    expr: col("a"),
                    desc: false,
                },
                SortKey {
                    expr: col("nope"),
                    desc: true,
                },
            ])
            .limit(2)
            .build();
        let a = analyze(&p);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::UnknownColumn && d.plan_path.contains("keys[1]")));
    }
}
