//! Expression type inference under SQL's Kleene three-valued semantics.
//!
//! The checker mirrors the *runtime* rules of `snowprune_expr::eval`
//! exactly, and only reports an error when an expression is **provably
//! degenerate** — it evaluates to NULL/UNKNOWN on every possible row, so
//! the query author cannot have meant it:
//!
//! * comparisons between statically incomparable types
//!   ([`Value::sql_cmp`](snowprune_types::Value::sql_cmp) returns `None`
//!   for `Int` vs `Str`, `Date` vs `Timestamp`, …),
//! * comparisons against the NULL literal (always UNKNOWN; `IS NULL` is
//!   the operator that observes NULLs),
//! * boolean combinators over provably non-boolean operands,
//! * arithmetic over provably non-numeric operands,
//! * `LIKE`/`STARTS WITH` over provably non-string operands.
//!
//! Anything that *could* be well-typed on some row — branches of `IF`
//! with different types, columns that failed to resolve (already reported
//! as [`DiagCode::UnknownColumn`]) — infers as a top element and is never
//! re-reported, so one root cause yields one diagnostic.

use snowprune_expr::{ArithOp, Expr};
use snowprune_storage::Schema;
use snowprune_types::{DiagCode, Diagnostic, ScalarType, Value};

/// Inferred static type of an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// A single known scalar type.
    Known(ScalarType),
    /// `Int` or `Float`, branch-dependent (e.g. an `IF` mixing the two);
    /// comparable with any numeric.
    Numeric,
    /// The NULL literal: untyped, compares UNKNOWN against everything.
    Null,
    /// Unknown or dynamically mixed; never provably wrong.
    Any,
}

impl Ty {
    /// Human-readable spelling for diagnostics.
    pub fn describe(self) -> String {
        match self {
            Ty::Known(t) => t.to_string(),
            Ty::Numeric => "numeric (BIGINT or DOUBLE)".into(),
            Ty::Null => "NULL".into(),
            Ty::Any => "unknown".into(),
        }
    }

    /// Can a comparison between these types ever be non-UNKNOWN?
    fn comparable_with(self, other: Ty) -> bool {
        match (self, other) {
            (Ty::Any, _) | (_, Ty::Any) => true,
            (Ty::Null, _) | (_, Ty::Null) => false,
            (Ty::Numeric, Ty::Numeric) => true,
            (Ty::Numeric, Ty::Known(k)) | (Ty::Known(k), Ty::Numeric) => k.is_numeric(),
            (Ty::Known(a), Ty::Known(b)) => a.comparable_with(b),
        }
    }

    /// Could this type be boolean on some row? (`Null` is a legal Kleene
    /// UNKNOWN operand.)
    fn boolean_ok(self) -> bool {
        matches!(self, Ty::Any | Ty::Null | Ty::Known(ScalarType::Bool))
    }

    /// Could this type be numeric on some row?
    fn numeric_ok(self) -> bool {
        match self {
            Ty::Any | Ty::Null | Ty::Numeric => true,
            Ty::Known(k) => k.is_numeric(),
        }
    }

    /// Could this type be a string on some row?
    fn string_ok(self) -> bool {
        matches!(self, Ty::Any | Ty::Null | Ty::Known(ScalarType::Str))
    }

    /// Least upper bound of two branch types (for `IF`/`COALESCE`).
    fn unify(self, other: Ty) -> Ty {
        match (self, other) {
            (a, b) if a == b => a,
            (Ty::Null, t) | (t, Ty::Null) => t,
            (Ty::Any, _) | (_, Ty::Any) => Ty::Any,
            (a, b) if a.numeric_ok() && b.numeric_ok() => Ty::Numeric,
            // Provably mixed non-numeric branches: dynamic, not an error
            // (the runtime picks one branch per row).
            _ => Ty::Any,
        }
    }
}

/// Infer the type of `expr` against `schema`, appending diagnostics for
/// every provably degenerate sub-expression. `path` anchors diagnostics in
/// the plan tree.
pub fn infer(expr: &Expr, schema: &Schema, path: &str, diags: &mut Vec<Diagnostic>) -> Ty {
    match expr {
        Expr::Literal(v) => literal_ty(v),
        Expr::Column(c) => match schema.fields().iter().find(|f| f.name == c.name) {
            Some(f) => Ty::Known(f.ty),
            None => {
                diags.push(Diagnostic::error(
                    DiagCode::UnknownColumn,
                    path,
                    format!(
                        "column `{}` is not in the input schema [{}]",
                        c.name,
                        schema
                            .fields()
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
                Ty::Any
            }
        },
        Expr::Cmp(_, a, b) => {
            let (ta, tb) = (infer(a, schema, path, diags), infer(b, schema, path, diags));
            if ta == Ty::Null || tb == Ty::Null {
                diags.push(Diagnostic::error(
                    DiagCode::NullComparison,
                    path,
                    "comparison against the NULL literal is UNKNOWN on every row; \
                     use IS NULL to observe NULLs",
                ));
            } else if !ta.comparable_with(tb) {
                diags.push(Diagnostic::error(
                    DiagCode::IncomparableCmp,
                    path,
                    format!(
                        "comparison between {} and {} is UNKNOWN on every row",
                        ta.describe(),
                        tb.describe()
                    ),
                ));
            }
            Ty::Known(ScalarType::Bool)
        }
        Expr::And(xs) | Expr::Or(xs) => {
            let op = if matches!(expr, Expr::And(_)) {
                "AND"
            } else {
                "OR"
            };
            for x in xs {
                let t = infer(x, schema, path, diags);
                if !t.boolean_ok() {
                    diags.push(Diagnostic::error(
                        DiagCode::NonBooleanPredicate,
                        path,
                        format!("operand of {op} has type {}, never boolean", t.describe()),
                    ));
                }
            }
            Ty::Known(ScalarType::Bool)
        }
        Expr::Not(x) => {
            let t = infer(x, schema, path, diags);
            if !t.boolean_ok() {
                diags.push(Diagnostic::error(
                    DiagCode::NonBooleanPredicate,
                    path,
                    format!("operand of NOT has type {}, never boolean", t.describe()),
                ));
            }
            Ty::Known(ScalarType::Bool)
        }
        Expr::IsNull(x) => {
            infer(x, schema, path, diags);
            Ty::Known(ScalarType::Bool)
        }
        Expr::Arith(op, a, b) => {
            let (ta, tb) = (infer(a, schema, path, diags), infer(b, schema, path, diags));
            let mut degenerate = false;
            for t in [ta, tb] {
                if !t.numeric_ok() {
                    degenerate = true;
                    diags.push(Diagnostic::error(
                        DiagCode::NonNumericArith,
                        path,
                        format!("arithmetic over {} is NULL on every row", t.describe()),
                    ));
                }
            }
            if degenerate {
                return Ty::Any;
            }
            if matches!(op, ArithOp::Div) {
                // SQL division always yields a float (÷0 yields NULL).
                return Ty::Known(ScalarType::Float);
            }
            match (ta, tb) {
                (Ty::Known(ScalarType::Int), Ty::Known(ScalarType::Int)) => {
                    Ty::Known(ScalarType::Int)
                }
                (Ty::Known(ScalarType::Float), Ty::Known(_))
                | (Ty::Known(_), Ty::Known(ScalarType::Float)) => Ty::Known(ScalarType::Float),
                (Ty::Null, Ty::Null) => Ty::Null,
                (Ty::Null, t) | (t, Ty::Null) => t,
                _ => Ty::Numeric,
            }
        }
        Expr::Neg(x) | Expr::Abs(x) => {
            let t = infer(x, schema, path, diags);
            if !t.numeric_ok() {
                diags.push(Diagnostic::error(
                    DiagCode::NonNumericArith,
                    path,
                    format!(
                        "{} over {} is NULL on every row",
                        if matches!(expr, Expr::Neg(_)) {
                            "negation"
                        } else {
                            "ABS"
                        },
                        t.describe()
                    ),
                ));
                return Ty::Any;
            }
            t
        }
        Expr::If(c, t, e) => {
            let tc = infer(c, schema, path, diags);
            if !tc.boolean_ok() {
                diags.push(Diagnostic::error(
                    DiagCode::NonBooleanPredicate,
                    path,
                    format!("IF condition has type {}, never boolean", tc.describe()),
                ));
            }
            let tt = infer(t, schema, path, diags);
            let te = infer(e, schema, path, diags);
            tt.unify(te)
        }
        Expr::Like(x, _) | Expr::StartsWith(x, _) => {
            let t = infer(x, schema, path, diags);
            if !t.string_ok() {
                diags.push(Diagnostic::error(
                    DiagCode::NonStringPattern,
                    path,
                    format!(
                        "{} over {} is UNKNOWN on every row",
                        if matches!(expr, Expr::Like(..)) {
                            "LIKE"
                        } else {
                            "STARTS WITH"
                        },
                        t.describe()
                    ),
                ));
            }
            Ty::Known(ScalarType::Bool)
        }
        Expr::InList(x, vals) => {
            let tx = infer(x, schema, path, diags);
            if tx == Ty::Null {
                diags.push(Diagnostic::error(
                    DiagCode::NullComparison,
                    path,
                    "NULL IN (...) is UNKNOWN on every row",
                ));
            } else {
                let non_null: Vec<Ty> = vals
                    .iter()
                    .filter(|v| !v.is_null())
                    .map(literal_ty)
                    .collect();
                if !vals.is_empty() && non_null.is_empty() {
                    diags.push(Diagnostic::error(
                        DiagCode::NullComparison,
                        path,
                        "IN list holds only NULLs; membership is UNKNOWN on every row",
                    ));
                } else if !non_null.is_empty() && non_null.iter().all(|t| !tx.comparable_with(*t)) {
                    diags.push(Diagnostic::error(
                        DiagCode::IncomparableCmp,
                        path,
                        format!(
                            "no IN-list element is comparable with {}; membership is \
                             UNKNOWN on every row",
                            tx.describe()
                        ),
                    ));
                }
            }
            Ty::Known(ScalarType::Bool)
        }
        Expr::Coalesce(xs) => {
            let mut ty = Ty::Null;
            for x in xs {
                ty = ty.unify(infer(x, schema, path, diags));
            }
            ty
        }
    }
}

/// Check an expression used in predicate position (scan/filter predicate):
/// infer its type and require it to be possibly-boolean.
pub fn check_predicate(expr: &Expr, schema: &Schema, path: &str, diags: &mut Vec<Diagnostic>) {
    let t = infer(expr, schema, path, diags);
    if !t.boolean_ok() {
        diags.push(Diagnostic::error(
            DiagCode::NonBooleanPredicate,
            path,
            format!(
                "predicate has type {}, never boolean: no row can qualify",
                t.describe()
            ),
        ));
    }
}

fn literal_ty(v: &Value) -> Ty {
    match v.scalar_type() {
        Some(t) => Ty::Known(t),
        None => Ty::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, if_, lit};
    use snowprune_storage::Field;
    use snowprune_types::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("s", ScalarType::Str),
            Field::new("d", ScalarType::Date),
        ])
    }

    fn diags_of(e: &Expr) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_predicate(e, &schema(), "test", &mut out);
        out
    }

    #[test]
    fn well_typed_predicates_are_clean() {
        assert!(diags_of(&col("a").gt(lit(3i64))).is_empty());
        assert!(diags_of(&col("s").like("x%").and(col("a").le(lit(2.5)))).is_empty());
        assert!(diags_of(&col("a").is_null().not()).is_empty());
        // IF mixing Int and Float branches unifies to numeric.
        let e = if_(
            col("s").eq(lit("feet")),
            col("a").mul(lit(0.3048)),
            col("a"),
        )
        .gt(lit(10i64));
        assert!(diags_of(&e).is_empty(), "{:?}", diags_of(&e));
    }

    #[test]
    fn incomparable_comparison_is_flagged() {
        let ds = diags_of(&col("a").eq(lit("x")));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::IncomparableCmp);
        let ds = diags_of(&col("d").lt(Expr::Literal(Value::Timestamp(5))));
        assert_eq!(ds[0].code, DiagCode::IncomparableCmp);
    }

    #[test]
    fn null_literal_comparison_is_flagged() {
        let ds = diags_of(&col("a").eq(Expr::Literal(Value::Null)));
        assert_eq!(ds[0].code, DiagCode::NullComparison);
    }

    #[test]
    fn non_boolean_positions_are_flagged() {
        let ds = diags_of(&col("a").and(col("a").gt(lit(0i64))));
        assert_eq!(ds[0].code, DiagCode::NonBooleanPredicate);
        // A bare column as the whole predicate.
        let ds = diags_of(&col("s"));
        assert_eq!(ds[0].code, DiagCode::NonBooleanPredicate);
    }

    #[test]
    fn non_numeric_arithmetic_and_pattern_are_flagged() {
        let ds = diags_of(&col("s").add(lit(1i64)).gt(lit(0i64)));
        assert_eq!(ds[0].code, DiagCode::NonNumericArith);
        let ds = diags_of(&col("a").like("3%"));
        assert_eq!(ds[0].code, DiagCode::NonStringPattern);
    }

    #[test]
    fn unknown_column_reports_once_and_suppresses_cascades() {
        let ds = diags_of(&col("nope").add(lit(1i64)).gt(lit(0i64)));
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, DiagCode::UnknownColumn);
    }

    #[test]
    fn in_list_typing() {
        assert!(diags_of(&col("a").in_list(vec![Value::Int(1), Value::Null])).is_empty());
        let ds = diags_of(&col("a").in_list(vec![Value::Str("x".into())]));
        assert_eq!(ds[0].code, DiagCode::IncomparableCmp);
        let ds = diags_of(&col("a").in_list(vec![Value::Null]));
        assert_eq!(ds[0].code, DiagCode::NullComparison);
    }
}
