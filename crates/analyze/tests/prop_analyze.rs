//! Property suite for the static plan analyzer.
//!
//! Soundness (zero false positives): every plan the differential,
//! production, and TPC-H workload generators can produce analyzes with
//! **zero error-severity diagnostics** — the analyzer may only reject
//! plans the engine could not execute correctly.
//!
//! Completeness (mutation testing): seeded single-node mutations of the
//! same corpus — renaming a referenced column, flipping a column's type
//! under the expressions that use it, emptying a sort's key list, and
//! severing top-k provenance with a self-join — must each surface at
//! least one diagnostic with the expected code.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snowprune_analyze::{analyze, DiagCode, Diagnostic};
use snowprune_expr::{ColumnRef, Expr};
use snowprune_plan::{AggFunc, Plan, PlanBuilder, SortKey};
use snowprune_storage::{Field, Schema};
use snowprune_types::ScalarType;
use snowprune_workload::diffgen::{
    build_workload, cacheable_queries, joinagg_queries, random_queries,
};

const WORKLOADS: u64 = 50;
const MISSING: &str = "___no_such_column";

/// Every plan of one differential workload seed, across all three query
/// mixes (the exact corpus `tests/differential.rs` executes).
fn corpus(seed: u64) -> Vec<Plan> {
    let wl = build_workload(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut plans = Vec::new();
    for (plan, _) in random_queries(&mut rng, &wl) {
        plans.push(plan);
    }
    for (plan, _) in cacheable_queries(&mut rng, &wl) {
        plans.push(plan);
    }
    for (plan, _) in joinagg_queries(&mut rng, &wl) {
        plans.push(plan);
    }
    plans
}

fn errors(plan: &Plan) -> Vec<Diagnostic> {
    analyze(plan)
        .diagnostics
        .into_iter()
        .filter(|d| d.is_error())
        .collect()
}

// ---- soundness: the valid corpus must analyze clean ----------------------

#[test]
fn differential_corpus_has_zero_false_positives() {
    for seed in 0..WORKLOADS {
        for plan in corpus(seed) {
            let errs = errors(&plan);
            assert!(
                errs.is_empty(),
                "seed {seed}: analyzer flagged a valid differential plan:\n{plan}\n{errs:?}"
            );
        }
    }
}

#[test]
fn production_workload_has_zero_false_positives() {
    let cfg = snowprune_workload::WorkloadConfig {
        queries: 120,
        ..Default::default()
    };
    for seed in [1u64, 7, 42] {
        let wl = snowprune_workload::generate(&cfg, seed);
        for q in &wl.queries {
            let errs = errors(&q.plan);
            assert!(
                errs.is_empty(),
                "seed {seed}: analyzer flagged a valid production plan {}:\n{errs:?}",
                q.sql
            );
        }
    }
}

#[test]
fn tpch_queries_have_zero_false_positives() {
    for (q, plan) in snowprune_workload::all_tpch_queries() {
        let errs = errors(&plan);
        assert!(errs.is_empty(), "TPC-H q{q} flagged:\n{errs:?}");
    }
}

// ---- mutation: rename a referenced column → unknown-column ---------------

fn rename_expr(e: &Expr, done: &mut bool) -> Expr {
    if *done {
        return e.clone();
    }
    match e {
        Expr::Column(c) => {
            *done = true;
            Expr::Column(ColumnRef {
                index: c.index,
                name: MISSING.into(),
            })
        }
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(rename_expr(a, done)),
            Box::new(rename_expr(b, done)),
        ),
        Expr::And(xs) => Expr::And(xs.iter().map(|x| rename_expr(x, done)).collect()),
        Expr::Or(xs) => Expr::Or(xs.iter().map(|x| rename_expr(x, done)).collect()),
        Expr::Not(x) => Expr::Not(Box::new(rename_expr(x, done))),
        Expr::IsNull(x) => Expr::IsNull(Box::new(rename_expr(x, done))),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(rename_expr(a, done)),
            Box::new(rename_expr(b, done)),
        ),
        Expr::Neg(x) => Expr::Neg(Box::new(rename_expr(x, done))),
        Expr::Abs(x) => Expr::Abs(Box::new(rename_expr(x, done))),
        Expr::If(c, t, f) => Expr::If(
            Box::new(rename_expr(c, done)),
            Box::new(rename_expr(t, done)),
            Box::new(rename_expr(f, done)),
        ),
        Expr::Like(x, p) => Expr::Like(Box::new(rename_expr(x, done)), p.clone()),
        Expr::StartsWith(x, p) => Expr::StartsWith(Box::new(rename_expr(x, done)), p.clone()),
        Expr::InList(x, vs) => Expr::InList(Box::new(rename_expr(x, done)), vs.clone()),
        Expr::Coalesce(xs) => Expr::Coalesce(xs.iter().map(|x| rename_expr(x, done)).collect()),
        Expr::Literal(_) => e.clone(),
    }
}

/// Rename the first column reference anywhere in the plan (predicates,
/// projections, join keys, grouping keys, aggregate inputs, sort keys).
fn rename_first(plan: &Plan, done: &mut bool) -> Plan {
    match plan {
        Plan::Scan {
            table,
            schema,
            predicate,
        } => Plan::Scan {
            table: table.clone(),
            schema: schema.clone(),
            predicate: predicate.as_ref().map(|p| rename_expr(p, done)),
        },
        Plan::Filter { input, predicate } => {
            let input = Box::new(rename_first(input, done));
            let predicate = rename_expr(predicate, done);
            Plan::Filter { input, predicate }
        }
        Plan::Project { input, columns } => {
            let input = Box::new(rename_first(input, done));
            let mut columns = columns.clone();
            if !*done && !columns.is_empty() {
                columns[0] = MISSING.into();
                *done = true;
            }
            Plan::Project { input, columns }
        }
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            join_type,
        } => {
            let build = Box::new(rename_first(build, done));
            let probe = Box::new(rename_first(probe, done));
            let mut build_key = build_key.clone();
            if !*done {
                build_key = MISSING.into();
                *done = true;
            }
            Plan::Join {
                build,
                probe,
                build_key,
                probe_key: probe_key.clone(),
                join_type: *join_type,
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = Box::new(rename_first(input, done));
            let mut group_by = group_by.clone();
            let mut aggs = aggs.clone();
            if !*done && !group_by.is_empty() {
                group_by[0] = MISSING.into();
                *done = true;
            } else if !*done {
                for a in &mut aggs {
                    if a.input_column().is_some() {
                        *a = AggFunc::Sum(MISSING.into());
                        *done = true;
                        break;
                    }
                }
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            }
        }
        Plan::Sort { input, keys } => {
            let input = Box::new(rename_first(input, done));
            let keys = keys
                .iter()
                .map(|k| SortKey {
                    expr: rename_expr(&k.expr, done),
                    desc: k.desc,
                })
                .collect();
            Plan::Sort { input, keys }
        }
        Plan::Limit { input, k, offset } => Plan::Limit {
            input: Box::new(rename_first(input, done)),
            k: *k,
            offset: *offset,
        },
    }
}

#[test]
fn renamed_column_yields_unknown_column() {
    for seed in 0..WORKLOADS {
        for plan in corpus(seed) {
            let mut done = false;
            let mutant = rename_first(&plan, &mut done);
            assert!(done, "seed {seed}: plan with no column reference?\n{plan}");
            let errs = errors(&mutant);
            assert!(
                errs.iter().any(|d| d.code == DiagCode::UnknownColumn),
                "seed {seed}: renamed column not flagged:\n{mutant}\n{errs:?}"
            );
        }
    }
}

// ---- mutation: flip a column's type → typing diagnostics -----------------

/// Flip column `name` to VARCHAR in every scan schema of the plan,
/// without touching the expressions that use it.
fn flip_to_str(plan: &Plan, name: &str, flipped: &mut bool) -> Plan {
    match plan {
        Plan::Scan {
            table,
            schema,
            predicate,
        } => {
            let fields = schema
                .fields()
                .iter()
                .map(|f| {
                    if f.name == name && f.ty != ScalarType::Str {
                        *flipped = true;
                        Field::new(f.name.clone(), ScalarType::Str)
                    } else {
                        f.clone()
                    }
                })
                .collect();
            Plan::Scan {
                table: table.clone(),
                schema: Schema::new(fields),
                predicate: predicate.clone(),
            }
        }
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(flip_to_str(input, name, flipped)),
            predicate: predicate.clone(),
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(flip_to_str(input, name, flipped)),
            columns: columns.clone(),
        },
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            join_type,
        } => Plan::Join {
            build: Box::new(flip_to_str(build, name, flipped)),
            probe: Box::new(flip_to_str(probe, name, flipped)),
            build_key: build_key.clone(),
            probe_key: probe_key.clone(),
            join_type: *join_type,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(flip_to_str(input, name, flipped)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(flip_to_str(input, name, flipped)),
            keys: keys.clone(),
        },
        Plan::Limit { input, k, offset } => Plan::Limit {
            input: Box::new(flip_to_str(input, name, flipped)),
            k: *k,
            offset: *offset,
        },
    }
}

#[test]
fn flipped_column_type_yields_typing_diagnostics() {
    let expected = [
        DiagCode::IncomparableCmp,
        DiagCode::JoinKeyMismatch,
        DiagCode::BadAggregateInput,
        DiagCode::NonNumericArith,
    ];
    for seed in 0..WORKLOADS {
        let mut flagged = 0usize;
        for plan in corpus(seed) {
            let mut flipped = false;
            let mutant = flip_to_str(&plan, "b", &mut flipped);
            if !flipped {
                continue;
            }
            let errs = errors(&mutant);
            for d in &errs {
                assert!(
                    expected.contains(&d.code),
                    "seed {seed}: unexpected code for type flip: {d}\n{mutant}"
                );
            }
            if !errs.is_empty() {
                flagged += 1;
            }
        }
        // Every seed's mix contains joins keyed on `b` (guaranteed
        // JoinKeyMismatch) and a SUM/AVG over `b` (BadAggregateInput).
        assert!(
            flagged >= 2,
            "seed {seed}: type flip surfaced only {flagged} flagged plans"
        );
    }
}

// ---- mutation: drop sort keys → empty-sort-keys --------------------------

fn empty_sort_keys(plan: &Plan, had_sort: &mut bool) -> Plan {
    match plan {
        Plan::Sort { input, .. } => {
            *had_sort = true;
            Plan::Sort {
                input: Box::new(empty_sort_keys(input, had_sort)),
                keys: Vec::new(),
            }
        }
        Plan::Limit { input, k, offset } => Plan::Limit {
            input: Box::new(empty_sort_keys(input, had_sort)),
            k: *k,
            offset: *offset,
        },
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(empty_sort_keys(input, had_sort)),
            predicate: predicate.clone(),
        },
        other => other.clone(),
    }
}

#[test]
fn dropped_sort_keys_yield_empty_sort_keys() {
    for seed in 0..WORKLOADS {
        let mut sort_plans = 0usize;
        for plan in corpus(seed) {
            let mut had_sort = false;
            let mutant = empty_sort_keys(&plan, &mut had_sort);
            if !had_sort {
                continue;
            }
            sort_plans += 1;
            let errs = errors(&mutant);
            assert!(
                errs.iter().any(|d| d.code == DiagCode::EmptySortKeys),
                "seed {seed}: keyless sort not flagged:\n{mutant}\n{errs:?}"
            );
        }
        assert!(sort_plans >= 2, "seed {seed}: no top-k plans in the mix?");
    }
}

// ---- mutation: self-join severs top-k provenance -------------------------

#[test]
fn self_join_topk_severs_provenance() {
    for seed in 0..8 {
        let wl = build_workload(seed);
        // The Figure 7b join-top-k shape, but with the probe table also
        // scanned on the build side (projected so the order column only
        // comes from the probe): classified as a join spine, yet the
        // survivor provenance is no longer attributable to one scan.
        let plan = PlanBuilder::scan("fact", wl.fact_schema.clone())
            .project(vec!["b"])
            .join(
                PlanBuilder::scan("fact", wl.fact_schema.clone()),
                "b",
                "a",
                snowprune_plan::JoinType::Inner,
            )
            .order_by("a", seed % 2 == 0)
            .limit(5)
            .build();
        let analysis = analyze(&plan);
        assert!(
            !analysis.cacheability.is_cacheable(),
            "seed {seed}: self-join top-k must not be cacheable"
        );
        assert!(
            analysis
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::ProvenanceNotAttributable),
            "seed {seed}: severed provenance not surfaced:\n{:?}",
            analysis.diagnostics
        );
    }
}
