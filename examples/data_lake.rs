//! Pruning for Iceberg-like data-lake tables (§8.1): hierarchical
//! file → row-group → page pruning, missing-metadata conservatism, and
//! metadata backfill.
//!
//! ```text
//! cargo run --release --example data_lake
//! ```

use snowprune::expr::{dsl, prune_eval};
use snowprune::prelude::*;
use snowprune::storage::{IoCostModel, LakeTable};

fn main() {
    let schema = Schema::new(vec![
        Field::new("event_date", ScalarType::Int),
        Field::new("device", ScalarType::Str),
        Field::new("reading", ScalarType::Int),
    ]);
    let rows: Vec<Vec<Value>> = (0..100_000i64)
        .map(|i| {
            vec![
                Value::Int(20_000 + i / 1_000), // ~100 distinct dates, sorted
                Value::Str(format!("sensor-{:04}", i % 500)),
                Value::Int((i * 37) % 100_000),
            ]
        })
        .collect();

    // A writer that produced file stats, row-group stats, and page indexes.
    let full = LakeTable::from_rows(
        "iot_lake",
        schema.clone(),
        rows.clone(),
        20_000, // rows per file -> 5 files
        4_000,  // rows per row group
        1_000,  // rows per page
        true,
        true,
        true,
    );
    // A sloppy writer that wrote no statistics at all.
    let mut bare = LakeTable::from_rows(
        "iot_lake_nostats",
        schema.clone(),
        rows,
        20_000,
        4_000,
        1_000,
        false,
        false,
        false,
    );

    // Predicate: one week of data.
    let pred = dsl::col("event_date")
        .between(dsl::lit(20_040i64), dsl::lit(20_046i64))
        .bind(&schema)
        .unwrap();
    let judge = move |zms: &[ZoneMap], rc: u64| prune_eval(&pred, zms).classify(rc);
    let judge_fn = |zms: &[ZoneMap], rc: u64| match judge(zms, rc) {
        MatchClass::NotMatching => Verdict::ALWAYS_FALSE,
        MatchClass::FullyMatching => Verdict::ALWAYS_TRUE,
        MatchClass::PartiallyMatching => Verdict::TOP,
    };

    let st = full.prune_hierarchical(&judge_fn);
    println!("with full metadata:");
    println!(
        "  files {}/{} pruned, row groups {}/{}, pages {}/{}, rows scanned {}",
        st.files_pruned,
        st.files_total,
        st.row_groups_pruned,
        st.row_groups_total,
        st.pages_pruned,
        st.pages_total,
        st.rows_scanned
    );

    let st = bare.prune_hierarchical(&judge_fn);
    println!("without metadata (conservative full scan):");
    println!("  rows scanned {}", st.rows_scanned);

    // §8.1: "Snowflake can reconstruct it by performing a full table scan to
    // compute missing metadata entries, which can then be used for
    // subsequent queries."
    let io = IoStats::new();
    bare.backfill_metadata(&io, &IoCostModel::default());
    let st = bare.prune_hierarchical(&judge_fn);
    println!(
        "after backfill ({} row-group loads, {:.1} ms simulated I/O):",
        io.snapshot().partitions_loaded,
        io.snapshot().simulated_io_ns as f64 / 1e6
    );
    println!(
        "  files {}/{} pruned, row groups {}/{}, rows scanned {}",
        st.files_pruned, st.files_total, st.row_groups_pruned, st.row_groups_total, st.rows_scanned
    );

    // The engine scans lake tables through the same scan path (§8.1:
    // "pruning techniques operating transparently across" formats).
    let catalog = Catalog::new();
    catalog.register(full.to_table());
    let exec = Executor::new(catalog, ExecConfig::default());
    let plan = PlanBuilder::scan("iot_lake", schema)
        .filter(dsl::col("event_date").between(dsl::lit(20_040i64), dsl::lit(20_046i64)))
        .build();
    let out = exec.run(&plan).unwrap();
    println!(
        "engine scan over the flattened lake table: {} rows, {:.1}% of partitions pruned",
        out.rows.len(),
        out.report.pruning.filter_ratio() * 100.0
    );
}
