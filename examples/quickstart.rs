//! Quickstart: build a clustered table, run a selective query, and inspect
//! how much I/O pruning saved.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snowprune::prelude::*;

fn main() {
    // A table of 100 micro-partitions clustered by timestamp.
    let schema = Schema::new(vec![
        Field::new("ts", ScalarType::Int),
        Field::new("user_id", ScalarType::Int),
        Field::new("metric", ScalarType::Int),
    ]);
    let mut builder = TableBuilder::new("events", schema.clone())
        .target_rows_per_partition(1_000)
        .layout(Layout::ClusterBy(vec!["ts".into()]));
    for i in 0..100_000i64 {
        builder.push_row(vec![
            Value::Int(i),
            Value::Int(i % 5_000),
            Value::Int((i * 31) % 1_000_003),
        ]);
    }
    let catalog = Catalog::new();
    catalog.register(builder.build());

    // SELECT * FROM events WHERE ts BETWEEN 42000 AND 42999
    let plan = PlanBuilder::scan("events", schema)
        .filter(col("ts").between(lit(42_000i64), lit(42_999i64)))
        .build();

    for (label, cfg) in [
        ("with pruning   ", ExecConfig::default()),
        ("without pruning", ExecConfig::no_pruning()),
    ] {
        let exec = Executor::new(catalog.clone(), cfg);
        let out = exec.run(&plan).expect("query runs");
        println!(
            "{label}: {} rows | {:>3} of 100 partitions loaded | {:>9} bytes | {:>6.2} ms simulated I/O",
            out.rows.len(),
            out.io.partitions_loaded,
            out.io.bytes_loaded,
            out.io.simulated_io_ns as f64 / 1e6,
        );
    }
    println!("\nThe fastest way of processing data is to not process it at all.");
}
