//! The paper's running example (§3–§6): the IUCN searching for an animal
//! observation post.
//!
//! Walks through all four pruning techniques on the `trails` /
//! `tracking_data` tables:
//! 1. filter pruning with a complex expression (`IF(unit='feet', ...)`)
//!    and an imprecise LIKE rewrite;
//! 2. LIMIT pruning via fully-matching partitions (Figure 5);
//! 3. top-k pruning with a boundary value;
//! 4. join pruning of the tracking-data probe side.
//!
//! ```text
//! cargo run --release --example wildlife_observatory
//! ```

use snowprune::prelude::*;

fn build_catalog() -> Catalog {
    let catalog = Catalog::new();

    let trails_schema = Schema::new(vec![
        Field::new("mountain", ScalarType::Str),
        Field::new("name", ScalarType::Str),
        Field::new("unit", ScalarType::Str),
        Field::new("altit", ScalarType::Int),
    ]);
    let mut trails = TableBuilder::new("trails", trails_schema)
        .target_rows_per_partition(200)
        .layout(Layout::ClusterBy(vec!["altit".into()]));
    for i in 0..4_000i64 {
        let unit = if i % 3 == 0 { "feet" } else { "meters" };
        let name = if i % 5 == 0 {
            format!("Marked-{}-Ridge", i % 400)
        } else {
            format!("Basecamp-{}", i % 700)
        };
        trails.push_row(vec![
            Value::Str(format!("M{:02}", i % 40)),
            Value::Str(name),
            Value::Str(unit.into()),
            Value::Int(400 + (i * 13) % 7_300),
        ]);
    }
    catalog.register(trails.build());

    let tracking_schema = Schema::new(vec![
        Field::new("area", ScalarType::Str),
        Field::new("species", ScalarType::Str),
        Field::new("s", ScalarType::Int),
        Field::new("num_sightings", ScalarType::Int),
    ]);
    let species = [
        "Alpine Ibex",
        "Alpine Goat",
        "Alpine Sheep",
        "Brown Bear",
        "Gray Wolf",
        "Red Fox",
        "Snow Vole",
        "Alpine Bat",
    ];
    let mut tracking = TableBuilder::new("tracking_data", tracking_schema)
        .target_rows_per_partition(500)
        .layout(Layout::ClusterBy(vec!["num_sightings".into()]));
    for i in 0..40_000i64 {
        tracking.push_row(vec![
            Value::Str(format!("M{:02}", i % 40)),
            Value::Str(species[(i % 8) as usize].into()),
            Value::Int(4 + (i * 7) % 130),
            Value::Int((i * 131) % 100_000),
        ]);
    }
    catalog.register(tracking.build());
    catalog
}

fn main() {
    let catalog = build_catalog();
    let trails_schema = catalog.get("trails").unwrap().read().schema().clone();
    let tracking_schema = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let exec = Executor::new(catalog.clone(), ExecConfig::default());

    // --- §3: filter pruning with a complex expression --------------------
    let altitude_pred = if_(
        col("unit").eq(lit("feet")),
        col("altit").mul(lit(0.3048)),
        col("altit"),
    )
    .gt(lit(1500i64))
    .and(col("name").like("Marked-%-Ridge"));
    println!("§3 query:\n  SELECT * FROM trails");
    println!("  WHERE IF(unit='feet', altit * 0.3048, altit) > 1500");
    println!("    AND name LIKE 'Marked-%-Ridge';");
    if let Some(widened) = snowprune::expr::widen_for_pruning(&col("name").like("Marked-%-Ridge")) {
        println!("  imprecise rewrite for pruning: {widened}");
    }
    let q1 = PlanBuilder::scan("trails", trails_schema.clone())
        .filter(altitude_pred.clone())
        .build();
    let out = exec.run(&q1).unwrap();
    println!(
        "  -> {} rows; filter pruning removed {:.1}% of partitions\n",
        out.rows.len(),
        out.report.pruning.filter_ratio() * 100.0
    );

    // --- §4: LIMIT pruning ------------------------------------------------
    println!("§4 query:\n  SELECT * FROM tracking_data");
    println!("  WHERE species LIKE 'Alpine%' AND s >= 50 LIMIT 3;");
    let q2 = PlanBuilder::scan("tracking_data", tracking_schema.clone())
        .filter(col("species").like("Alpine%").and(col("s").ge(lit(50i64))))
        .limit(3)
        .build();
    let out = exec.run(&q2).unwrap();
    println!(
        "  -> {} rows; outcome {:?}; {} partitions loaded (fully-matching partitions found: {})\n",
        out.rows.len(),
        out.report.limit_outcome,
        out.io.partitions_loaded,
        out.report.pruning.fully_matching,
    );

    // --- §5: top-k pruning -------------------------------------------------
    println!("§5 query:\n  SELECT * FROM tracking_data");
    println!("  WHERE species LIKE 'Alpine%' AND s >= 50");
    println!("  ORDER BY num_sightings DESC LIMIT 3;");
    let q3 = PlanBuilder::scan("tracking_data", tracking_schema.clone())
        .filter(col("species").like("Alpine%").and(col("s").ge(lit(50i64))))
        .order_by("num_sightings", true)
        .limit(3)
        .build();
    let out = exec.run(&q3).unwrap();
    println!(
        "  -> top values: {:?}; boundary pruning skipped {} of {} partitions\n",
        out.rows
            .rows
            .iter()
            .map(|r| r[3].clone())
            .collect::<Vec<_>>(),
        out.report.topk_stats.partitions_skipped,
        out.report.topk_stats.partitions_considered,
    );

    // --- §6: the full query — three techniques on one table ---------------
    println!("§6 query:\n  SELECT * FROM trails t JOIN tracking_data d ON t.mountain = d.area");
    println!("  WHERE IF(unit='feet', altit*0.3048, altit) > 1500 AND name LIKE 'Marked-%-Ridge'");
    println!("    AND species LIKE 'Alpine%' AND s >= 50");
    println!("  ORDER BY d.num_sightings DESC LIMIT 3;");
    let q4 = PlanBuilder::scan("trails", trails_schema)
        .filter(altitude_pred)
        .join(
            PlanBuilder::scan("tracking_data", tracking_schema)
                .filter(col("species").like("Alpine%").and(col("s").ge(lit(50i64)))),
            "mountain",
            "area",
            JoinType::Inner,
        )
        .order_by("num_sightings", true)
        .limit(3)
        .build();
    let out = exec.run(&q4).unwrap();
    let p = &out.report.pruning;
    println!(
        "  -> {} rows; filter pruned {}, join pruned {}, top-k pruned {} of {} total partitions",
        out.rows.len(),
        p.pruned_by_filter,
        p.pruned_by_join,
        p.pruned_by_topk,
        p.partitions_total,
    );
    println!(
        "  techniques used together: {}",
        p.techniques_used().label()
    );
}
