//! Cybersecurity scenario from the paper's intro: a threat-detection tool
//! investigating connections from specific IP prefixes, recent log-in
//! attempts (top-k), and dashboard LIMIT queries — all over an
//! append-mostly log table whose natural time order makes zone maps sharp.
//!
//! ```text
//! cargo run --release --example security_logs
//! ```

use snowprune::prelude::*;

fn main() {
    let schema = Schema::new(vec![
        Field::new("ts", ScalarType::Timestamp),
        Field::new("src_ip", ScalarType::Str),
        Field::new("action", ScalarType::Str),
        Field::new("severity", ScalarType::Int),
        Field::new("bytes_out", ScalarType::Int),
    ]);
    let actions = ["login", "logout", "read", "write", "denied"];
    let mut b = TableBuilder::new("audit_log", schema.clone())
        .target_rows_per_partition(2_000)
        .layout(Layout::Natural); // logs arrive roughly in time order
    for i in 0..200_000i64 {
        b.push_row(vec![
            Value::Timestamp(1_700_000_000_000_000 + i * 1_000_000),
            Value::Str(format!(
                "10.{}.{}.{}",
                (i * 7) % 256,
                (i * 13) % 256,
                (i * 29) % 256
            )),
            Value::Str(actions[(i % 5) as usize].into()),
            Value::Int((i * 11) % 10),
            Value::Int((i * 97) % 1_000_000),
        ]);
    }
    let catalog = Catalog::new();
    catalog.register(b.build());
    let exec = Executor::new(catalog.clone(), ExecConfig::default());

    // 1. "A cybersecurity expert might investigate a few connections from a
    //    specific IP address" — LIMIT pruning with a predicate.
    let q1 = PlanBuilder::scan("audit_log", schema.clone())
        .filter(col("src_ip").like("10.77.%"))
        .limit(5)
        .build();
    let out = exec.run(&q1).unwrap();
    println!(
        "IP investigation: {} rows, {} of {} partitions loaded (outcome {:?})",
        out.rows.len(),
        out.io.partitions_loaded,
        out.report.pruning.partitions_total,
        out.report.limit_outcome
    );

    // 2. "A threat-detection tool might identify recent log-in attempts" —
    //    a top-k query on the timestamp, where the natural log order makes
    //    boundary pruning skip almost the whole table.
    let q2 = PlanBuilder::scan("audit_log", schema.clone())
        .filter(col("action").eq(lit("login")))
        .order_by("ts", true)
        .limit(20)
        .build();
    let out = exec.run(&q2).unwrap();
    println!(
        "Recent logins: {} rows, top-k skipped {} of {} partitions",
        out.rows.len(),
        out.report.topk_stats.partitions_skipped,
        out.report.topk_stats.partitions_considered,
    );

    // 3. "A dashboard tool might automatically append a default LIMIT" —
    //    LIMIT without predicate prunes to a single partition.
    let q3 = PlanBuilder::scan("audit_log", schema.clone())
        .limit(100)
        .build();
    let out = exec.run(&q3).unwrap();
    println!(
        "Dashboard preview: {} rows from {} partition(s)",
        out.rows.len(),
        out.io.partitions_loaded
    );

    // 4. Severity sweep with a complex predicate: time window AND
    //    (denied actions OR exfiltration-sized transfers).
    let window_start = 1_700_000_000_000_000 + 150_000 * 1_000_000;
    let q4 = PlanBuilder::scan("audit_log", schema)
        .filter(
            col("ts").ge(lit(Value::Timestamp(window_start))).and(
                col("action")
                    .eq(lit("denied"))
                    .or(col("bytes_out").gt(lit(900_000i64))),
            ),
        )
        .build();
    let out = exec.run(&q4).unwrap();
    println!(
        "Threat sweep: {} rows, filter pruning removed {:.1}% of partitions",
        out.rows.len(),
        out.report.pruning.filter_ratio() * 100.0
    );
}
