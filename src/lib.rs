//! # snowprune
//!
//! A from-scratch reproduction of *"Pruning in Snowflake: Working Smarter,
//! Not Harder"* (SIGMOD-Companion '25): partition pruning for analytical
//! query engines over micro-partition zone maps, covering all four
//! techniques the paper describes — **filter pruning** (with min/max range
//! derivation through complex expressions, imprecise filter rewrites,
//! adaptive reordering, and pruning cutoff), **LIMIT pruning** via
//! fully-matching partitions, **top-k pruning** with boundary values, and
//! **join pruning** via build-side value summaries.
//!
//! ## Quick start
//!
//! ```
//! use snowprune::prelude::*;
//!
//! // 1. Build a table clustered by timestamp.
//! let schema = Schema::new(vec![
//!     Field::new("ts", ScalarType::Int),
//!     Field::new("metric", ScalarType::Int),
//! ]);
//! let mut b = TableBuilder::new("events", schema.clone())
//!     .target_rows_per_partition(100)
//!     .layout(Layout::ClusterBy(vec!["ts".into()]));
//! for i in 0..10_000i64 {
//!     b.push_row(vec![Value::Int(i), Value::Int(i % 97)]);
//! }
//! let catalog = Catalog::new();
//! catalog.register(b.build());
//!
//! // 2. Plan a selective query.
//! let plan = PlanBuilder::scan("events", schema)
//!     .filter(col("ts").between(lit(2_000i64), lit(2_199i64)))
//!     .build();
//!
//! // 3. Execute with pruning and inspect the report.
//! let exec = Executor::new(catalog, ExecConfig::default());
//! let out = exec.run(&plan).unwrap();
//! assert_eq!(out.rows.len(), 200);
//! assert_eq!(out.io.partitions_loaded, 2); // 98 of 100 partitions pruned
//! assert!(out.report.pruning.filter_ratio() > 0.97);
//! ```
//!
//! See `DESIGN.md` for the architecture and the per-experiment index, and
//! the `snowprune-bench` crate for the harness regenerating every table
//! and figure of the paper.

#![forbid(unsafe_code)]
pub use snowprune_cache as cache;
pub use snowprune_core as core;
pub use snowprune_exec as exec;
pub use snowprune_expr as expr;
pub use snowprune_ir as ir;
pub use snowprune_plan as plan;
pub use snowprune_sql as sql;
pub use snowprune_storage as storage;
pub use snowprune_types as types;
pub use snowprune_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use snowprune_cache::{CacheLookup, CacheStats, DmlKind, EntryKind, PredicateCache};
    pub use snowprune_core::{
        FilterPruneConfig, FilterPruner, JoinSummary, LimitOutcome, PartitionOrder,
        QueryPruningReport, ScanSet, SummaryKind,
    };
    pub use snowprune_exec::{
        CacheOutcome, ExecConfig, Executor, MorselPool, QueryOutput, RowSet, Session,
    };
    pub use snowprune_expr::dsl::{coalesce, col, if_, lit};
    pub use snowprune_expr::Expr;
    pub use snowprune_plan::{AggFunc, JoinType, Plan, PlanBuilder, SortKey};
    pub use snowprune_sql::{SessionSqlExt, SqlOutcome, Statement};
    pub use snowprune_storage::{
        Catalog, Field, IoCostModel, IoStats, LakeTable, Layout, Schema, Table, TableBuilder,
    };
    pub use snowprune_types::{MatchClass, ScalarType, Value, ValueRange, Verdict, ZoneMap};
}
