//! Concurrency stress suite: 16 queries on a small shared worker pool,
//! repeated 100×, asserting per-query prune counters, I/O totals, and row
//! results are **exactly reproducible** across runs — no lost counter
//! updates, no cross-query crosstalk, fully deterministic given the seed.
//!
//! The query set deliberately sticks to shapes whose partition set is
//! decided at compile time or is scan-order-insensitive (filtered selects,
//! full scans, joins, and LIMITs that prune to a minimal cover): for those,
//! even arbitrary morsel interleavings must reproduce identical counters.
//! Shapes with timing-dependent I/O (racing early-stop, top-k boundary
//! skips mid-flight) are covered by the differential and property suites,
//! which check result-invariance rather than counter equality.
//!
//! Worker count honours `SNOWPRUNE_SCAN_THREADS` (CI matrix: 1, 4, 8) and
//! the prefetch depth honours `SNOWPRUNE_PREFETCH_DEPTH` (CI: 1, 8);
//! defaults are the issue's 4-worker / depth-2 scenario. A second leg runs
//! a mixed-depth pool (depths 1, 2, 8 round-robin across queries sharing
//! one pool) and must be equally reproducible.

use snowprune::exec::{
    batch_rows_from_env, prefetch_depth_from_env, scan_threads_from_env, verify_plans_from_env,
};
use snowprune::prelude::*;

const RUNS: usize = 100;
const QUERIES: usize = 16;

fn pool_threads() -> usize {
    scan_threads_from_env().unwrap_or(4)
}

fn env_prefetch_depth() -> usize {
    prefetch_depth_from_env().unwrap_or(2)
}

fn env_batch_rows() -> usize {
    batch_rows_from_env().unwrap_or(ExecConfig::default().batch_rows)
}

fn env_verify_plans() -> bool {
    verify_plans_from_env().unwrap_or(ExecConfig::default().verify_plans)
}

fn catalog() -> Catalog {
    let fact_schema = Schema::new(vec![
        Field::new("ts", ScalarType::Int),
        Field::new("key", ScalarType::Int),
        Field::new("val", ScalarType::Int),
    ]);
    let mut fact = TableBuilder::new("fact", fact_schema)
        .target_rows_per_partition(32)
        .layout(Layout::ClusterBy(vec!["ts".into()]));
    for i in 0..512i64 {
        fact.push_row(vec![
            Value::Int(i),
            // Correlated with the ts clustering (each partition covers a
            // narrow key window) — the §8.3 precondition for join pruning.
            Value::Int(i / 8),
            Value::Int((i * 7919) % 1000),
        ]);
    }
    let dim_schema = Schema::new(vec![
        Field::new("id", ScalarType::Int),
        Field::new("w", ScalarType::Int),
    ]);
    let mut dim = TableBuilder::new("dim", dim_schema).target_rows_per_partition(16);
    for id in 0..64i64 {
        dim.push_row(vec![Value::Int(id), Value::Int(id % 10)]);
    }
    let c = Catalog::new();
    c.register(fact.build());
    c.register(dim.build());
    c
}

fn schema_of(c: &Catalog, t: &str) -> Schema {
    c.get(t).unwrap().read().schema().clone()
}

fn queries(c: &Catalog) -> Vec<Plan> {
    let fact = schema_of(c, "fact");
    let dim = schema_of(c, "dim");
    let mut plans = Vec::with_capacity(QUERIES);
    // 8 filtered selects with staggered, partially overlapping ranges.
    for i in 0..8i64 {
        plans.push(
            PlanBuilder::scan("fact", fact.clone())
                .filter(col("ts").between(lit(i * 60), lit(i * 60 + 150)))
                .build(),
        );
    }
    // 2 full scans (projected / raw).
    plans.push(
        PlanBuilder::scan("fact", fact.clone())
            .project(vec!["ts", "val"])
            .build(),
    );
    plans.push(PlanBuilder::scan("fact", fact.clone()).build());
    // 3 joins with build sides of varying selectivity.
    for w in [2i64, 5, 9] {
        plans.push(
            PlanBuilder::scan("dim", dim.clone())
                .filter(col("w").lt(lit(w)))
                .join(
                    PlanBuilder::scan("fact", fact.clone()),
                    "id",
                    "key",
                    JoinType::Inner,
                )
                .build(),
        );
    }
    // 3 LIMITs without predicate: LIMIT pruning shrinks the scan set to a
    // minimal fully-matching cover at compile time, so the partition set —
    // and therefore every counter — is deterministic on the pool.
    for k in [10u64, 40, 90] {
        plans.push(PlanBuilder::scan("fact", fact.clone()).limit(k).build());
    }
    assert_eq!(plans.len(), QUERIES);
    plans
}

/// Everything that must be bit-identical across repeated runs. `io` is the
/// full per-query `IoSnapshot`, so the prefetch pipeline's virtual-clock
/// accounting (overlap, cancellations, simulated wall) must also reproduce
/// exactly under arbitrary morsel interleavings.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    partitions_total: u64,
    partitions_scanned: u64,
    pruned_by_filter: u64,
    pruned_by_limit: u64,
    pruned_by_join: u64,
    pruned_by_topk: u64,
    io: snowprune::storage::IoSnapshot,
    scan: snowprune::exec::ScanRunStats,
    row_count: usize,
    rows_sorted: Vec<Vec<Value>>,
}

fn fingerprint(out: &QueryOutput) -> Fingerprint {
    let mut rows = out.rows.rows.clone();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            let ord = x.total_ord_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let p = &out.report.pruning;
    Fingerprint {
        partitions_total: p.partitions_total,
        partitions_scanned: p.partitions_scanned,
        pruned_by_filter: p.pruned_by_filter,
        pruned_by_limit: p.pruned_by_limit,
        pruned_by_join: p.pruned_by_join,
        pruned_by_topk: p.pruned_by_topk,
        io: out.io,
        scan: out.report.scan_stats,
        row_count: out.rows.len(),
        rows_sorted: rows,
    }
}

#[test]
fn sixteen_queries_on_shared_pool_are_exactly_reproducible() {
    let threads = pool_threads();
    let catalog = catalog();
    let plans = queries(&catalog);
    let cfg = ExecConfig::default()
        .with_scan_threads(threads)
        .with_prefetch_depth(env_prefetch_depth())
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans());

    let run_once = || -> Vec<Fingerprint> {
        let session = Session::new(catalog.clone(), cfg.clone());
        session
            .run_batch(&plans)
            .into_iter()
            .map(|r| fingerprint(&r.expect("query failed")))
            .collect()
    };

    let reference = run_once();
    // Sanity: the workload actually exercises each pruning technique and
    // per-query accounting is self-consistent.
    assert!(reference.iter().any(|f| f.pruned_by_filter > 0));
    assert!(reference.iter().any(|f| f.pruned_by_limit > 0));
    assert!(reference.iter().any(|f| f.pruned_by_join > 0));
    for f in &reference {
        assert_eq!(f.partitions_scanned, f.io.partitions_loaded);
        assert_eq!(f.row_count, f.rows_sorted.len());
        // Pipeline invariant and load/record lockstep.
        assert_eq!(
            f.scan.loaded + f.scan.skipped_by_boundary + f.scan.cancelled_in_flight(),
            f.scan.considered
        );
        assert_eq!(f.scan.loaded, f.io.partitions_loaded);
        assert_eq!(f.scan.cancelled_in_flight(), f.io.loads_cancelled);
    }

    for run in 1..RUNS {
        let got = run_once();
        for (qi, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(
                g, r,
                "run {run} query {qi} diverged on a {threads}-worker pool"
            );
        }
    }
}

/// Production-scale admission leg: 256 queries across 64 tenants with
/// Zipf-skewed arrivals on a small shared pool, run through the
/// admission-controlled windowed FIFO with adaptive prefetch depth. The
/// fingerprint covers every admitted query's counters and rows **plus**
/// the per-tenant [`snowprune::exec::TenantStats`] (queue waits, lane
/// gaps, morsel counts, depth histories) — all of it must be bit-identical
/// across 100 repetitions, because both the stats and the adaptive depths
/// are computed from virtual clocks and the windowed-FIFO discipline, not
/// from host scheduling.
#[test]
fn admitted_multi_tenant_burst_is_exactly_reproducible() {
    use snowprune::exec::TenantStats;
    use snowprune::workload::{production_scale, ProductionScaleConfig};

    let scale = ProductionScaleConfig {
        tenants: 64,
        queries: 256,
        fact_partitions: 96,
        rows_per_partition: 8,
        zipf_s: 1.1,
    };
    let wl = production_scale(&scale, 0x5eed);
    // Every one of the 64 tenant sessions contributes at least one query
    // (the leading arrivals cycle through the fleet); the rest of the
    // burst keeps the generator's Zipf skew.
    let arrivals: Vec<(u64, Plan)> = wl
        .arrivals
        .iter()
        .enumerate()
        .map(|(i, (t, q))| {
            let tenant = if i < scale.tenants { i as u64 } else { *t };
            (tenant, q.plan.clone())
        })
        .collect();
    let cfg = ExecConfig::default()
        .with_scan_threads(pool_threads())
        .with_prefetch_depth(env_prefetch_depth())
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans())
        .with_tenant_max_concurrent(2)
        .with_admission_queue_cap(6)
        .with_adaptive_prefetch(true)
        .with_prefetch_max_depth(8);

    let run_once = || -> (Vec<Option<Fingerprint>>, Vec<TenantStats>) {
        let session = Session::new(wl.catalog.clone(), cfg.clone());
        let run = session.run_admitted(&arrivals);
        let outcomes = run
            .outcomes
            .iter()
            .map(|o| o.output().map(fingerprint))
            .collect();
        (outcomes, run.tenants)
    };

    let (ref_outcomes, ref_tenants) = run_once();
    // The skewed burst must actually exercise admission control: the Zipf
    // head tenants overflow their 2-running + 6-queued windows.
    let rejected = ref_outcomes.iter().filter(|o| o.is_none()).count();
    assert!(rejected > 0, "no rejections: the burst never hit the caps");
    assert!(
        ref_outcomes.len() - rejected >= 128,
        "most of the burst should still be admitted"
    );
    assert_eq!(ref_tenants.len(), scale.tenants);
    for t in &ref_tenants {
        assert!(
            t.depth_hist.iter().all(|&d| (1..=8).contains(&d)),
            "tenant {} adaptive depth out of bounds: {:?}",
            t.tenant,
            t.depth_hist
        );
    }

    for run in 1..RUNS {
        let (outcomes, tenants) = run_once();
        for (qi, (g, r)) in outcomes.iter().zip(&ref_outcomes).enumerate() {
            assert_eq!(g, r, "run {run} arrival {qi} diverged under admission");
        }
        assert_eq!(tenants, ref_tenants, "run {run} TenantStats diverged");
    }
}

/// The 16-query burst with *heterogeneous* prefetch depths — queries are
/// assigned depths 1, 2, 8 round-robin but share one worker pool — must be
/// just as reproducible: per-query counters and the full `IoSnapshot`
/// (including overlap and virtual wall-clock) bit-identical across 100
/// repetitions. Depth is per-lane state, so mixing depths on shared
/// workers must introduce no crosstalk.
#[test]
fn mixed_prefetch_depth_pool_runs_are_reproducible() {
    const DEPTHS: [usize; 3] = [1, 2, 8];
    let threads = pool_threads();
    let catalog = catalog();
    let plans = queries(&catalog);
    let base = ExecConfig::default()
        .with_scan_threads(threads)
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans());

    let run_once = || -> Vec<Fingerprint> {
        let pool = MorselPool::new(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    let cfg = base.clone().with_prefetch_depth(DEPTHS[i % DEPTHS.len()]);
                    let exec =
                        Executor::with_pool(catalog.clone(), cfg, std::sync::Arc::clone(&pool));
                    scope.spawn(move || exec.run(plan).expect("query failed"))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| fingerprint(&h.join().expect("driver panicked")))
                .collect()
        })
    };

    let reference = run_once();
    for (qi, f) in reference.iter().enumerate() {
        assert_eq!(
            f.scan.loaded + f.scan.skipped_by_boundary + f.scan.cancelled_in_flight(),
            f.scan.considered,
            "query {qi} violates the pipeline invariant"
        );
        assert_eq!(f.scan.loaded, f.io.partitions_loaded, "query {qi}");
    }
    // Depth must not change which partitions load for these shapes — only
    // the overlap accounting; depth-1 lanes can never overlap.
    for (qi, f) in reference.iter().enumerate() {
        if qi % DEPTHS.len() == 0 {
            assert_eq!(f.io.io_overlapped_ns, 0, "depth-1 query {qi} overlapped");
        }
    }
    assert!(
        reference
            .iter()
            .enumerate()
            .any(|(qi, f)| qi % DEPTHS.len() != 0 && f.io.io_overlapped_ns > 0),
        "deeper lanes should overlap some I/O"
    );

    for run in 1..RUNS {
        let got = run_once();
        for (qi, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(
                g,
                r,
                "run {run} query {qi} (depth {}) diverged on a mixed-depth {threads}-worker pool",
                DEPTHS[qi % DEPTHS.len()]
            );
        }
    }
}
