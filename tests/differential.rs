//! Differential pruning-oracle suite: for many seeded random workloads
//! (random schemas, layouts, predicates, LIMIT / top-k / join shapes), the
//! executor with **all four pruning techniques enabled** must return
//! results identical to the **all-pruning-disabled oracle** — sequentially
//! and with the whole workload running concurrently on the shared morsel
//! pool ("Sparsity May Cry": pruning claims only count under an
//! adversarial, result-checked harness).
//!
//! Determinism contract per query shape:
//! * filter / scan / join / aggregation queries: row *multisets* must be
//!   byte-identical (order canonicalized — joins and pooled scans may
//!   legally reorder);
//! * top-k over a unique ORDER BY key: the exact ordered rows must be
//!   byte-identical;
//! * LIMIT without ORDER BY: SQL allows any k matching rows, so every
//!   engine must return exactly `min(k, |matching|)` rows, each contained
//!   in the oracle's unlimited result.
//!
//! The pool worker count honours `SNOWPRUNE_SCAN_THREADS` (CI runs this
//! suite at 1, 4, and 8 workers), the default prefetch depth honours
//! `SNOWPRUNE_PREFETCH_DEPTH` (CI runs depths 1 and 8), and the execution
//! batch size honours `SNOWPRUNE_BATCH_ROWS` (CI runs 1 and 1024); the
//! dedicated prefetch leg additionally pins depths 1 and 4, and the
//! vectorized-batch leg pins `batch_rows ∈ {1, 3, 1024}` against the
//! whole-partition row-order oracle.

use snowprune::exec::{
    admission_queue_cap_from_env, batch_rows_from_env, predicate_cache_from_env,
    predicate_cache_mode_from_env, prefetch_depth_from_env, scan_threads_from_env,
    tenant_max_concurrent_from_env, verify_plans_from_env, CacheOutcome, PredicateCacheMode,
};
use snowprune::prelude::*;
use snowprune::workload::diffgen::{
    build_workload, cacheable_queries, joinagg_queries, random_queries, Check, Workload,
};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const WORKLOADS: u64 = 50;

fn pool_threads() -> usize {
    scan_threads_from_env().unwrap_or(4)
}

fn env_prefetch_depth() -> usize {
    prefetch_depth_from_env().unwrap_or(2)
}

fn env_batch_rows() -> usize {
    batch_rows_from_env().unwrap_or(ExecConfig::default().batch_rows)
}

fn env_verify_plans() -> bool {
    verify_plans_from_env().unwrap_or(ExecConfig::default().verify_plans)
}

/// The prefetch pipeline's counter invariant: every considered scan-set
/// entry was loaded, skipped before submission, or cancelled in flight.
fn assert_pipeline_invariant(out: &QueryOutput, ctx: &str) {
    let s = &out.report.scan_stats;
    assert_eq!(
        s.loaded + s.skipped_by_boundary + s.cancelled_in_flight(),
        s.considered,
        "{ctx}: loaded + skipped + cancelled != considered ({s:?})"
    );
    assert_eq!(
        out.io.partitions_loaded, s.loaded,
        "{ctx}: IoStats and scan counters disagree on loads"
    );
}

// ---- random workload generation -----------------------------------------
//
// The generator lives in `snowprune::workload::diffgen` so the analyzer
// property suite (`crates/analyze/tests/prop_analyze.rs`) runs over the
// identical plan corpus this harness executes.

// ---- comparison helpers --------------------------------------------------

fn cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_ord_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| cmp_rows(a, b));
    rows
}

// ---- the oracle ----------------------------------------------------------

#[test]
fn pruning_is_result_invariant_across_50_workloads() {
    let threads = pool_threads();
    let pruned_cfg = ExecConfig::default()
        .with_prefetch_depth(env_prefetch_depth())
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans());
    let oracle_cfg = ExecConfig::no_pruning()
        .with_prefetch_depth(env_prefetch_depth())
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans());
    for w in 0..WORKLOADS {
        let seed = 0xD1FF_0000 + w;
        let wl = build_workload(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let queries = random_queries(&mut rng, &wl);
        let plans: Vec<Plan> = queries.iter().map(|(p, _)| p.clone()).collect();

        // Sequential engines.
        let pruned_seq = Executor::new(wl.catalog.clone(), pruned_cfg.clone());
        let oracle_seq = Executor::new(wl.catalog.clone(), oracle_cfg.clone());
        // Pooled engines: the whole workload runs as one concurrent batch
        // on a shared pool, so morsels of different queries interleave.
        let pruned_pool = Session::new(
            wl.catalog.clone(),
            pruned_cfg.clone().with_scan_threads(threads),
        );
        let oracle_pool = Session::new(
            wl.catalog.clone(),
            oracle_cfg.clone().with_scan_threads(threads),
        );
        let pruned_batch = pruned_pool.run_batch(&plans);
        let oracle_batch = oracle_pool.run_batch(&plans);

        for (qi, (plan, check)) in queries.iter().enumerate() {
            let ctx = format!("workload {w} query {qi} (threads {threads})");
            let ps = pruned_seq
                .run(plan)
                .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
            let os = oracle_seq
                .run(plan)
                .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
            let pp = pruned_batch[qi]
                .as_ref()
                .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
            let op = oracle_batch[qi]
                .as_ref()
                .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
            // Pruning must never scan more than the oracle.
            assert!(
                ps.report.pruning.partitions_scanned <= os.report.pruning.partitions_scanned,
                "{ctx}: pruned scanned more than oracle"
            );
            for (label, out) in [("seq pruned", &ps), ("seq oracle", &os)] {
                assert_pipeline_invariant(out, &format!("{ctx} {label}"));
            }
            for (label, out) in [("pool pruned", pp), ("pool oracle", op)] {
                assert_pipeline_invariant(out, &format!("{ctx} {label}"));
            }
            match check {
                Check::Sorted => {
                    let expect = canonical(os.rows.rows.clone());
                    assert_eq!(canonical(ps.rows.rows.clone()), expect, "{ctx}: seq pruned");
                    assert_eq!(
                        canonical(pp.rows.rows.clone()),
                        expect,
                        "{ctx}: pool pruned"
                    );
                    assert_eq!(
                        canonical(op.rows.rows.clone()),
                        expect,
                        "{ctx}: pool oracle"
                    );
                }
                Check::Ordered => {
                    let expect = &os.rows.rows;
                    assert_eq!(&ps.rows.rows, expect, "{ctx}: seq pruned (ordered)");
                    assert_eq!(&pp.rows.rows, expect, "{ctx}: pool pruned (ordered)");
                    assert_eq!(&op.rows.rows, expect, "{ctx}: pool oracle (ordered)");
                }
                Check::Limited { k, unlimited } => {
                    let full = canonical(oracle_seq.run(unlimited).unwrap().rows.rows);
                    let expect_len = (*k).min(full.len());
                    for (label, out) in [
                        ("seq pruned", &ps),
                        ("pool pruned", pp),
                        ("pool oracle", op),
                    ] {
                        assert_eq!(out.rows.len(), expect_len, "{ctx}: {label} row count");
                        for row in &out.rows.rows {
                            assert!(
                                full.binary_search_by(|probe| cmp_rows(probe, row)).is_ok(),
                                "{ctx}: {label} returned a row outside the oracle result"
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---- the predicate-cache leg ---------------------------------------------

/// Random DML statement applied *through the session*, so the predicate
/// cache sees every result. Inserted rows use fresh unique `a` keys and
/// `a`-updates shift by a large disjoint offset, preserving the unique-key
/// invariant the Ordered checks rely on.
fn apply_random_dml(rng: &mut StdRng, session: &Session, wl: &Workload, next_a: &mut i64) {
    let schema = &wl.fact_schema;
    let a = schema.index_of("a").unwrap();
    let c = schema.index_of("c").unwrap();
    let cats = ["red", "green", "blue", "teal"];
    let hi = wl.fact_rows as i64;
    let lo = rng.random_range(0..hi);
    let span = rng.random_range(0..hi / 8 + 1);
    let in_band = |row: &[Value]| match &row[a] {
        Value::Int(x) => *x >= lo && *x <= lo + span,
        _ => false,
    };
    match rng.random_range(0u32..5) {
        0 => {
            // INSERT 1..3 rows with fresh unique keys.
            let n = rng.random_range(1usize..4);
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let mut row = Vec::with_capacity(schema.len());
                for f in schema.fields() {
                    row.push(match f.name.as_str() {
                        "a" => {
                            *next_a += 1;
                            Value::Int(*next_a)
                        }
                        "b" => Value::Int(rng.random_range(-500i64..500)),
                        "c" => Value::Str(cats[rng.random_range(0usize..cats.len())].into()),
                        _ => Value::Int(rng.random_range(0i64..1000)),
                    });
                }
                rows.push(row);
            }
            session.insert_rows("fact", rows).unwrap();
        }
        1 => {
            // DELETE an `a` band (unsafe for top-k entries).
            session.delete_rows("fact", |row| in_band(row)).unwrap();
        }
        2 => {
            // UPDATE the predicate column `b` (moves rows into/out of
            // predicate ranges in arbitrary partitions).
            let delta = rng.random_range(-300i64..300);
            session
                .update_rows("fact", |row| {
                    let mut r = row.to_vec();
                    if in_band(row) {
                        if let Value::Int(b) = r[schema.index_of("b").unwrap()] {
                            r[schema.index_of("b").unwrap()] = Value::Int(b + delta);
                        }
                    }
                    r
                })
                .unwrap();
        }
        3 => {
            // UPDATE the category column `c`.
            let cat = cats[rng.random_range(0usize..cats.len())];
            session
                .update_rows("fact", |row| {
                    let mut r = row.to_vec();
                    if in_band(row) {
                        r[c] = Value::Str(cat.into());
                    }
                    r
                })
                .unwrap();
        }
        _ => {
            // UPDATE the ordering/unique column `a` by a disjoint offset
            // (unsafe for top-k entries ordered on `a`; keys stay unique).
            session
                .update_rows("fact", |row| {
                    let mut r = row.to_vec();
                    if in_band(row) {
                        if let Value::Int(x) = r[a] {
                            r[a] = Value::Int(x + 10_000_000);
                        }
                    }
                    r
                })
                .unwrap();
        }
    }
}

/// Cacheable query shapes (top-k above scan, filter chains) for the cache
/// leg. LIMIT-without-ORDER-BY is deliberately absent: its result set is
/// legally nondeterministic, so "byte-identical to a cold oracle" is not a
/// meaningful contract for it (and the engine does not cache it).
/// Fingerprint modes to sweep: the env override when set (the CI
/// cache-matrix pins one mode per job), both modes otherwise.
fn cache_modes() -> Vec<PredicateCacheMode> {
    match predicate_cache_mode_from_env() {
        Some(mode) => vec![mode],
        None => vec![PredicateCacheMode::Exact, PredicateCacheMode::Shape],
    }
}

/// §8.2 differential leg: replay every workload's cacheable shapes
/// cold-then-warm on a cached session, interleaved with random safe and
/// unsafe DML routed through the session, and require each replay to be
/// byte-identical to a cold no-pruning oracle run over the live table —
/// in both fingerprint modes (`SNOWPRUNE_PREDICATE_CACHE_MODE` pins one;
/// under shape mode the random literal-sharing queries also exercise the
/// subsumption fallback). `SNOWPRUNE_PREDICATE_CACHE=0` runs the identical
/// protocol with the cache disabled (the CI matrix covers all settings).
#[test]
fn predicate_cache_warm_replays_match_cold_oracle() {
    let threads = pool_threads();
    let cache_on = predicate_cache_from_env().unwrap_or(true);
    for mode in cache_modes() {
        let cfg = ExecConfig::default()
            .with_prefetch_depth(env_prefetch_depth())
            .with_batch_rows(env_batch_rows())
            .with_verify_plans(env_verify_plans())
            .with_scan_threads(threads)
            .with_predicate_cache(cache_on)
            .with_predicate_cache_mode(mode);
        for w in 0..WORKLOADS {
            let seed = 0xCAC4_0000 + w;
            let wl = build_workload(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
            let session = Session::new(wl.catalog.clone(), cfg.clone());
            let oracle = Executor::new(wl.catalog.clone(), ExecConfig::no_pruning());
            let queries = cacheable_queries(&mut rng, &wl);
            let mut next_a = wl.fact_rows as i64 * 1_000;
            for (qi, (plan, check)) in queries.iter().enumerate() {
                let ctx = format!(
                    "workload {w} query {qi} (threads {threads}, cache {cache_on}, {mode:?})"
                );
                // Cold run populates the cache (or hits an entry recorded
                // by a colliding earlier shape — both are fine).
                let cold = session.run(plan).unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                assert_pipeline_invariant(&cold, &format!("{ctx} cold"));
                // Interleave random DML through the session.
                for _ in 0..rng.random_range(0u32..3) {
                    apply_random_dml(&mut rng, &session, &wl, &mut next_a);
                }
                // Replay after DML, then replay again with the cache
                // certainly populated; both must match a cold oracle over
                // the live table.
                let warm = session.run(plan).unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                let warm2 = session.run(plan).unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                let oracle_out = oracle.run(plan).unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                for (label, out) in [("warm", &warm), ("warm2", &warm2)] {
                    assert_pipeline_invariant(out, &format!("{ctx} {label}"));
                    match check {
                        Check::Sorted => assert_eq!(
                            canonical(out.rows.rows.clone()),
                            canonical(oracle_out.rows.rows.clone()),
                            "{ctx}: {label} diverged from cold oracle"
                        ),
                        Check::Ordered => assert_eq!(
                            &out.rows.rows, &oracle_out.rows.rows,
                            "{ctx}: {label} diverged from cold oracle (ordered)"
                        ),
                        Check::Limited { .. } => unreachable!("not generated here"),
                    }
                }
                // With the cache enabled, the second replay (no DML since
                // the first) must be served — exactly in exact mode, via
                // either path in shape mode (the warm run may itself have
                // been a shape hit, recording nothing under this exact
                // fingerprint). Disabled, the cache is never consulted.
                if cache_on {
                    match mode {
                        PredicateCacheMode::Exact => assert_eq!(
                            warm2.report.cache,
                            CacheOutcome::Hit,
                            "{ctx}: immediate replay must hit"
                        ),
                        PredicateCacheMode::Shape => assert!(
                            matches!(
                                warm2.report.cache,
                                CacheOutcome::Hit | CacheOutcome::ShapeHit
                            ),
                            "{ctx}: immediate replay must be served, got {:?}",
                            warm2.report.cache
                        ),
                    }
                } else {
                    assert_eq!(warm2.report.cache, CacheOutcome::NotConsulted);
                }
            }
            if cache_on {
                let stats = session.cache_stats();
                assert!(
                    stats.hits + stats.shape_hits >= queries.len() as u64,
                    "workload {w} ({mode:?}): no hits"
                );
            }
        }
    }
}

/// Shape-mode subsumption under the cold oracle: for every workload, a
/// wide filter (`b >= X`) and a top-k (`... LIMIT k`) are recorded cold,
/// then replayed *narrowed* (`b >= X + δ`, `LIMIT k' < k`) — in shape mode
/// the narrowed replays must be served by subsumption (`ShapeHit`) and in
/// exact mode they must miss; either way, results after interleaved DML
/// stay byte-identical to a cold no-pruning oracle over the live table.
#[test]
fn predicate_cache_shape_subsumption_matches_cold_oracle() {
    let threads = pool_threads();
    if !predicate_cache_from_env().unwrap_or(true) {
        return; // the cache-off matrix leg has nothing to subsume
    }
    for mode in cache_modes() {
        let cfg = ExecConfig::default()
            .with_prefetch_depth(env_prefetch_depth())
            .with_batch_rows(env_batch_rows())
            .with_verify_plans(env_verify_plans())
            .with_scan_threads(threads)
            .with_predicate_cache(true)
            .with_predicate_cache_mode(mode);
        for w in 0..WORKLOADS {
            let seed = 0xC0DE_0000 + w;
            let wl = build_workload(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
            let fs = &wl.fact_schema;
            let threshold = rng.random_range(-300i64..200);
            let delta = rng.random_range(1i64..150);
            let k_wide = rng.random_range(8u64..30);
            let k_narrow = rng.random_range(1u64..k_wide);
            let filter = |lo: i64| {
                PlanBuilder::scan("fact", fs.clone())
                    .filter(col("b").ge(lit(lo)))
                    .build()
            };
            let topk = |k: u64| {
                PlanBuilder::scan("fact", fs.clone())
                    .filter(col("b").ge(lit(threshold)))
                    .order_by("a", true)
                    .limit(k)
                    .build()
            };
            let pairs: [(Plan, Plan, Check); 2] = [
                (filter(threshold), filter(threshold + delta), Check::Sorted),
                (topk(k_wide), topk(k_narrow), Check::Ordered),
            ];
            for (pi, (wide, narrow, check)) in pairs.iter().enumerate() {
                let ctx = format!("workload {w} pair {pi} (threads {threads}, {mode:?})");
                // Fresh session per pair: the wide cold run always records.
                let session = Session::new(wl.catalog.clone(), cfg.clone());
                let cold = session.run(wide).unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                assert_eq!(cold.report.cache, CacheOutcome::Miss, "{ctx}: cold");
                // The narrowed replay (no DML yet): shape mode serves it by
                // subsumption, exact mode must miss.
                let narrowed = session
                    .run(narrow)
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                assert_pipeline_invariant(&narrowed, &format!("{ctx} narrowed"));
                match mode {
                    PredicateCacheMode::Shape => assert_eq!(
                        narrowed.report.cache,
                        CacheOutcome::ShapeHit,
                        "{ctx}: narrowed replay must be served by subsumption"
                    ),
                    PredicateCacheMode::Exact => assert_eq!(
                        narrowed.report.cache,
                        CacheOutcome::Miss,
                        "{ctx}: exact mode must not subsume"
                    ),
                }
                let oracle = Executor::new(wl.catalog.clone(), ExecConfig::no_pruning());
                let oracle_out = oracle
                    .run(narrow)
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                let compare = |out: &QueryOutput, oracle_out: &QueryOutput, label: &str| match check
                {
                    Check::Sorted => assert_eq!(
                        canonical(out.rows.rows.clone()),
                        canonical(oracle_out.rows.rows.clone()),
                        "{ctx}: {label} diverged from cold oracle"
                    ),
                    Check::Ordered => assert_eq!(
                        &out.rows.rows, &oracle_out.rows.rows,
                        "{ctx}: {label} diverged from cold oracle (ordered)"
                    ),
                    Check::Limited { .. } => unreachable!("not generated here"),
                };
                compare(&narrowed, &oracle_out, "narrowed");
                assert!(
                    narrowed.io.partitions_loaded <= oracle_out.io.partitions_loaded,
                    "{ctx}: narrowed replay loaded more than the oracle"
                );
                // Interleave DML, then replay the narrowed query again: the
                // serve path may change (invalidation, appends), but the
                // result must still match a cold oracle on the live table.
                let mut next_a = wl.fact_rows as i64 * 2_000;
                for _ in 0..rng.random_range(1u32..3) {
                    apply_random_dml(&mut rng, &session, &wl, &mut next_a);
                }
                let after_dml = session
                    .run(narrow)
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                assert_pipeline_invariant(&after_dml, &format!("{ctx} after-dml"));
                let oracle_after = oracle
                    .run(narrow)
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                compare(&after_dml, &oracle_after, "after-dml");
            }
        }
    }
}

// ---- the prefetch leg ----------------------------------------------------

/// The same 50 workloads × 6 query shapes, executed with all pruning on at
/// `prefetch_depth ∈ {1, 4}` (sequentially and as concurrent pool
/// batches), must stay byte-identical to the blocking sequential oracle —
/// and every run must satisfy the pipeline counter invariant
/// `loaded + skipped + cancelled == considered`. Cancellation is I/O
/// accounting only; it can never change results.
#[test]
fn prefetch_depths_match_sequential_oracle() {
    let threads = pool_threads();
    let oracle_cfg = ExecConfig::no_pruning()
        .with_prefetch_depth(1)
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans());
    for w in 0..WORKLOADS {
        let seed = 0xD1FF_0000 + w;
        let wl = build_workload(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let queries = random_queries(&mut rng, &wl);
        let plans: Vec<Plan> = queries.iter().map(|(p, _)| p.clone()).collect();
        // Blocking sequential oracle: no pruning, no prefetching. Its runs
        // are depth-independent and deterministic — execute each query (and
        // each LIMIT shape's unlimited variant) once, outside the depth
        // sweep.
        let oracle = Executor::new(wl.catalog.clone(), oracle_cfg.clone());
        let oracle_outs: Vec<QueryOutput> = plans
            .iter()
            .map(|p| {
                oracle
                    .run(p)
                    .unwrap_or_else(|e| panic!("workload {w} oracle: {e:?}"))
            })
            .collect();
        let oracle_full: Vec<Option<Vec<Vec<Value>>>> = queries
            .iter()
            .map(|(_, check)| match check {
                Check::Limited { unlimited, .. } => {
                    Some(canonical(oracle.run(unlimited).unwrap().rows.rows))
                }
                _ => None,
            })
            .collect();

        for depth in [1usize, 4] {
            let cfg = ExecConfig::default()
                .with_prefetch_depth(depth)
                .with_batch_rows(env_batch_rows())
                .with_verify_plans(env_verify_plans());
            let seq = Executor::new(wl.catalog.clone(), cfg.clone());
            let pool = Session::new(wl.catalog.clone(), cfg.with_scan_threads(threads));
            let batch = pool.run_batch(&plans);
            for (qi, (_, check)) in queries.iter().enumerate() {
                let ctx = format!("workload {w} query {qi} depth {depth} (threads {threads})");
                let os = &oracle_outs[qi];
                let ps = seq
                    .run(&plans[qi])
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                let pp = batch[qi]
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                assert_pipeline_invariant(&ps, &format!("{ctx} seq"));
                assert_pipeline_invariant(pp, &format!("{ctx} pool"));
                assert!(
                    ps.io.bytes_loaded <= os.io.bytes_loaded,
                    "{ctx}: prefetching loaded more bytes than the oracle"
                );
                match check {
                    Check::Sorted => {
                        let expect = canonical(os.rows.rows.clone());
                        assert_eq!(canonical(ps.rows.rows.clone()), expect, "{ctx}: seq");
                        assert_eq!(canonical(pp.rows.rows.clone()), expect, "{ctx}: pool");
                    }
                    Check::Ordered => {
                        assert_eq!(&ps.rows.rows, &os.rows.rows, "{ctx}: seq (ordered)");
                        assert_eq!(&pp.rows.rows, &os.rows.rows, "{ctx}: pool (ordered)");
                    }
                    Check::Limited { k, .. } => {
                        let full = oracle_full[qi]
                            .as_ref()
                            .expect("limited oracle precomputed");
                        let expect_len = (*k).min(full.len());
                        for (label, out) in [("seq", &ps), ("pool", pp)] {
                            assert_eq!(out.rows.len(), expect_len, "{ctx}: {label} row count");
                            for row in &out.rows.rows {
                                assert!(
                                    full.binary_search_by(|probe| cmp_rows(probe, row)).is_ok(),
                                    "{ctx}: {label} row outside the oracle result"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---- the vectorized-batch leg --------------------------------------------

/// The same 50 workloads × 6 query shapes, executed at
/// `batch_rows ∈ {1, 3, 1024}`, must be indistinguishable from the
/// whole-partition row-order oracle (`batch_rows = usize::MAX`: one
/// window per partition — exactly the pre-vectorization delivery
/// granularity). Batching is post-load CPU-side chunking, so on the
/// sequential engine nothing may move at all: rows are byte-identical in
/// order (for *every* shape, including racing LIMIT — the sticky-break
/// contract keeps partition-granular early stop exact), and the full
/// [`IoSnapshot`], scan counters, and pruning report are equal. On the
/// shared pool, morsel interleaving makes I/O for top-k / racing-LIMIT
/// shapes legally timing-dependent, so pooled runs are held to the same
/// per-shape determinism contract as the pruning leg instead.
#[test]
fn vectorized_matches_row_oracle() {
    run_batch_size_sweep(random_queries, 0xD1FF_0000, 0x5EED, ExecConfig::default());
}

// ---- the batch-native join/agg leg ---------------------------------------

/// Join/aggregation shapes that historically dropped to the row-at-a-time
/// fallback at the first join or GROUP BY. Both engines must agree on them
/// whether the batch-native operators are on or off.
/// Join/aggregation differential: the batch-native operators at
/// `batch_rows ∈ {1, 3, 1024}` must be indistinguishable from the
/// row-at-a-time fallback oracle (`batch_native(false)` with
/// whole-partition windows — exactly the pre-batch execution). On the
/// sequential engine rows, the full [`IoSnapshot`], scan counters, the
/// pruning report, and the bloom-skip accounting must all be
/// bit-identical; pooled runs are held to the per-shape determinism
/// contract.
#[test]
fn joinagg_batch_matches_row_oracle() {
    run_batch_size_sweep(
        joinagg_queries,
        0x10A6_0000,
        0xBA7C,
        ExecConfig::default().with_batch_native(false),
    );
}

// ---- the admission leg ---------------------------------------------------

/// Admission differential: the same seeded workloads' query shapes, run as
/// admission-controlled multi-tenant bursts (`Session::run_admitted` with
/// tight per-tenant caps and adaptive prefetch depth), must satisfy the
/// exact per-shape determinism contract against the sequential pruned
/// engine — and the rejections themselves must be a pure function of
/// arrival order and the caps. Afterwards the *same* session re-runs every
/// plan (including the just-rejected ones) as an ordinary pooled batch: a
/// rejected query must leave no stranded morsels or lane state behind, so
/// the follow-up batch completes and matches the oracle too.
///
/// The caps honour `SNOWPRUNE_TENANT_MAX_CONCURRENT` /
/// `SNOWPRUNE_ADMISSION_QUEUE_CAP` (the CI pool matrix sweeps the
/// concurrency cap); the default 1 running + 1 queued rejects each
/// tenant's third arrival, while wider caps exercise the all-admitted
/// windowed dispatch path.
#[test]
fn admitted_bursts_match_sequential_oracle_and_leave_no_residue() {
    let threads = pool_threads();
    let c = tenant_max_concurrent_from_env().unwrap_or(1);
    let q = admission_queue_cap_from_env().unwrap_or(1);
    // Per-tenant admission window: arrivals past `c + q` are rejected.
    let cap = c + q;
    let cfg = ExecConfig::default()
        .with_prefetch_depth(env_prefetch_depth())
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans())
        .with_scan_threads(threads)
        .with_tenant_max_concurrent(c)
        .with_admission_queue_cap(q)
        .with_adaptive_prefetch(true)
        .with_prefetch_max_depth(6);
    for w in 0..WORKLOADS / 2 {
        let seed = 0xD1FF_0000 + w;
        let wl = build_workload(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let queries = random_queries(&mut rng, &wl);
        let plans: Vec<Plan> = queries.iter().map(|(p, _)| p.clone()).collect();
        let arrivals: Vec<(u64, Plan)> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| ((i % 2) as u64, p.clone()))
            .collect();

        let oracle = Executor::new(
            wl.catalog.clone(),
            ExecConfig::default()
                .with_prefetch_depth(env_prefetch_depth())
                .with_batch_rows(env_batch_rows())
                .with_verify_plans(env_verify_plans()),
        );
        let session = Session::new(wl.catalog.clone(), cfg.clone());
        let run = session.run_admitted(&arrivals);
        assert_eq!(run.outcomes.len(), arrivals.len());

        let check_output = |out: &QueryOutput, qi: usize, label: &str| {
            let ctx = format!("workload {w} query {qi} (threads {threads})");
            assert_pipeline_invariant(out, &format!("{ctx} {label}"));
            let os = oracle
                .run(&plans[qi])
                .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
            match &queries[qi].1 {
                Check::Sorted => assert_eq!(
                    canonical(out.rows.rows.clone()),
                    canonical(os.rows.rows),
                    "{ctx}: {label} diverged from the sequential oracle"
                ),
                Check::Ordered => assert_eq!(
                    &out.rows.rows, &os.rows.rows,
                    "{ctx}: {label} diverged from the sequential oracle (ordered)"
                ),
                Check::Limited { k, unlimited } => {
                    let full = canonical(oracle.run(unlimited).unwrap().rows.rows);
                    assert_eq!(
                        out.rows.len(),
                        (*k).min(full.len()),
                        "{ctx}: {label} row count"
                    );
                    for row in &out.rows.rows {
                        assert!(
                            full.binary_search_by(|probe| cmp_rows(probe, row)).is_ok(),
                            "{ctx}: {label} returned a row outside the oracle result"
                        );
                    }
                }
            }
        };

        for (qi, outcome) in run.outcomes.iter().enumerate() {
            // Burst admission over alternating arrivals: arrival `qi` is
            // its tenant's `qi / 2`-th query, rejected exactly when that
            // index overflows the `cap`-wide window — independent of
            // timing, depth, or pool size.
            if qi / 2 >= cap {
                assert!(
                    outcome.is_rejected(),
                    "workload {w}: arrival {qi} overflowed its tenant window (cap {cap}) \
                     and must be rejected"
                );
                continue;
            }
            let out = outcome
                .output()
                .unwrap_or_else(|| panic!("workload {w}: arrival {qi} must be admitted"));
            check_output(out, qi, "admitted");
        }

        // No residue: the same session (same pool, same lanes) runs every
        // plan again as a plain batch — the rejected arrivals' lanes must
        // not exist, and nothing may block or diverge.
        let batch = session.run_batch(&plans);
        for (qi, res) in batch.iter().enumerate() {
            let out = res
                .as_ref()
                .unwrap_or_else(|e| panic!("workload {w} follow-up query {qi}: {e:?}"));
            check_output(out, qi, "follow-up batch");
        }
    }
}

/// Shared harness for the vectorized and join/agg legs: for each seeded
/// workload, run `make_queries` shapes on sequential and pooled engines at
/// `batch_rows ∈ {1, 3, 1024}` against a sequential whole-partition oracle
/// built from `oracle_base` (row-fallback when `batch_native` is off).
fn run_batch_size_sweep(
    make_queries: fn(&mut StdRng, &Workload) -> Vec<(Plan, Check)>,
    seed_base: u64,
    seed_mix: u64,
    oracle_base: ExecConfig,
) {
    let threads = pool_threads();
    let base_cfg = ExecConfig::default().with_prefetch_depth(env_prefetch_depth());
    for w in 0..WORKLOADS {
        let seed = seed_base + w;
        let wl = build_workload(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ seed_mix);
        let queries = make_queries(&mut rng, &wl);
        let plans: Vec<Plan> = queries.iter().map(|(p, _)| p.clone()).collect();

        // Whole-partition row-order oracle: sequential, all pruning on.
        let oracle = Executor::new(
            wl.catalog.clone(),
            oracle_base
                .clone()
                .with_prefetch_depth(env_prefetch_depth())
                .with_batch_rows(usize::MAX),
        );
        let oracle_outs: Vec<QueryOutput> = plans
            .iter()
            .map(|p| {
                oracle
                    .run(p)
                    .unwrap_or_else(|e| panic!("workload {w} oracle: {e:?}"))
            })
            .collect();
        let oracle_full: Vec<Option<Vec<Vec<Value>>>> = queries
            .iter()
            .map(|(_, check)| match check {
                Check::Limited { unlimited, .. } => {
                    Some(canonical(oracle.run(unlimited).unwrap().rows.rows))
                }
                _ => None,
            })
            .collect();

        for batch_rows in [1usize, 3, 1024] {
            let cfg = base_cfg.clone().with_batch_rows(batch_rows);
            let seq = Executor::new(wl.catalog.clone(), cfg.clone());
            let pool = Session::new(wl.catalog.clone(), cfg.with_scan_threads(threads));
            let batch = pool.run_batch(&plans);
            for (qi, (_, check)) in queries.iter().enumerate() {
                let ctx =
                    format!("workload {w} query {qi} batch_rows {batch_rows} (threads {threads})");
                let os = &oracle_outs[qi];
                let ps = seq
                    .run(&plans[qi])
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                let pp = batch[qi]
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{ctx}: {e:?}"));
                assert_pipeline_invariant(&ps, &format!("{ctx} seq"));
                assert_pipeline_invariant(pp, &format!("{ctx} pool"));
                // Sequential: the batch size must be invisible, bit for bit.
                assert_eq!(
                    &ps.rows.rows, &os.rows.rows,
                    "{ctx}: seq rows diverged from the whole-partition oracle"
                );
                assert_eq!(
                    ps.io, os.io,
                    "{ctx}: seq I/O accounting moved with the batch size"
                );
                assert_eq!(
                    ps.report.scan_stats, os.report.scan_stats,
                    "{ctx}: seq scan counters moved with the batch size"
                );
                assert_eq!(
                    ps.report.pruning, os.report.pruning,
                    "{ctx}: seq pruning report moved with the batch size"
                );
                assert_eq!(
                    ps.report.bloom_skipped_rows, os.report.bloom_skipped_rows,
                    "{ctx}: seq bloom-skip accounting diverged"
                );
                // Pooled: per-shape determinism contract.
                match check {
                    Check::Sorted => {
                        assert_eq!(
                            canonical(pp.rows.rows.clone()),
                            canonical(os.rows.rows.clone()),
                            "{ctx}: pool"
                        );
                    }
                    Check::Ordered => {
                        assert_eq!(&pp.rows.rows, &os.rows.rows, "{ctx}: pool (ordered)");
                    }
                    Check::Limited { k, .. } => {
                        let full = oracle_full[qi]
                            .as_ref()
                            .expect("limited oracle precomputed");
                        let expect_len = (*k).min(full.len());
                        assert_eq!(pp.rows.len(), expect_len, "{ctx}: pool row count");
                        for row in &pp.rows.rows {
                            assert!(
                                full.binary_search_by(|probe| cmp_rows(probe, row)).is_ok(),
                                "{ctx}: pool row outside the oracle result"
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---- the SQL round-trip leg ----------------------------------------------
//
// Every plan shape the generator produces must survive the full SQL loop:
// emit SQL text, lex/parse/bind it against the workload catalog, and get
// back a *structurally identical* plan — then execution of the lowered
// plan must be byte-identical (rows and IO counters) to the hand-built
// plan, sequentially and on the shared morsel pool.

#[test]
fn sql_round_trip_is_byte_identical_across_50_workloads() {
    use snowprune::sql::{bind_sql, Statement};
    use snowprune::workload::emit_sql;

    let threads = pool_threads();
    let cfg = ExecConfig::default()
        .with_prefetch_depth(env_prefetch_depth())
        .with_batch_rows(env_batch_rows())
        .with_verify_plans(env_verify_plans());
    for w in 0..WORKLOADS {
        let seed = 0xD1FF_0000 + w;
        let wl = build_workload(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let queries = random_queries(&mut rng, &wl);

        // Emit + parse + bind: the lowered plan must equal the hand-built
        // one structurally, before anything executes.
        let mut lowered_plans = Vec::with_capacity(queries.len());
        for (qi, (plan, _)) in queries.iter().enumerate() {
            let ctx = format!("workload {w} query {qi}");
            let sql =
                emit_sql(plan).unwrap_or_else(|| panic!("{ctx}: no SQL spelling for\n{plan}"));
            let lowered = match bind_sql(&sql, &wl.catalog) {
                Ok(Statement::Query(p)) => p,
                Ok(_) => panic!("{ctx}: `{sql}` bound to a DML statement"),
                Err(e) => panic!("{ctx}: `{sql}` failed to bind: {e}"),
            };
            assert_eq!(lowered, *plan, "{ctx}: `{sql}` lowered to a different plan");
            lowered_plans.push(lowered);
        }

        // Sequential: fresh engines per side, so per-query IO snapshots of
        // structurally equal plans must agree bit for bit.
        let hand_seq = Executor::new(wl.catalog.clone(), cfg.clone());
        let sql_seq = Executor::new(wl.catalog.clone(), cfg.clone());
        for (qi, (plan, _)) in queries.iter().enumerate() {
            let ctx = format!("workload {w} query {qi} (sequential)");
            let h = hand_seq
                .run(plan)
                .unwrap_or_else(|e| panic!("{ctx}: hand-built: {e:?}"));
            let s = sql_seq
                .run(&lowered_plans[qi])
                .unwrap_or_else(|e| panic!("{ctx}: lowered: {e:?}"));
            assert_eq!(s.rows.rows, h.rows.rows, "{ctx}: rows diverge");
            assert_eq!(s.io, h.io, "{ctx}: IO snapshots diverge");
            assert_eq!(
                s.report.pruning.partitions_scanned, h.report.pruning.partitions_scanned,
                "{ctx}: pruning effectiveness diverges"
            );
        }

        // Pooled: the whole lowered workload runs as one concurrent batch;
        // compare against the hand-built batch under each shape's check
        // contract (pool scheduling may legally reorder Sorted results).
        let hand_pool = Session::new(wl.catalog.clone(), cfg.clone().with_scan_threads(threads));
        let sql_pool = Session::new(wl.catalog.clone(), cfg.clone().with_scan_threads(threads));
        let hand_plans: Vec<Plan> = queries.iter().map(|(p, _)| p.clone()).collect();
        let hand_batch = hand_pool.run_batch(&hand_plans);
        let sql_batch = sql_pool.run_batch(&lowered_plans);
        for (qi, (_, check)) in queries.iter().enumerate() {
            let ctx = format!("workload {w} query {qi} (pooled, threads {threads})");
            let h = hand_batch[qi]
                .as_ref()
                .unwrap_or_else(|e| panic!("{ctx}: hand-built: {e:?}"));
            let s = sql_batch[qi]
                .as_ref()
                .unwrap_or_else(|e| panic!("{ctx}: lowered: {e:?}"));
            match check {
                Check::Sorted => assert_eq!(
                    canonical(s.rows.rows.clone()),
                    canonical(h.rows.rows.clone()),
                    "{ctx}: row multisets diverge"
                ),
                Check::Ordered => {
                    assert_eq!(s.rows.rows, h.rows.rows, "{ctx}: ordered rows diverge")
                }
                Check::Limited { k, unlimited } => {
                    let full = canonical(hand_seq.run(unlimited).unwrap().rows.rows);
                    let expect_len = (*k).min(full.len());
                    assert_eq!(s.rows.len(), expect_len, "{ctx}: lowered row count");
                    for row in &s.rows.rows {
                        assert!(
                            full.binary_search_by(|probe| cmp_rows(probe, row)).is_ok(),
                            "{ctx}: lowered plan returned a row outside the oracle result"
                        );
                    }
                }
            }
        }
    }
}
