//! Cross-crate integration tests exercising the full stack through the
//! `snowprune` facade: storage → expressions → planning → pruning →
//! execution → caching.

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use snowprune::cache::{CacheLookup, DmlKind, PredicateCache};
use snowprune::plan::{fingerprint, FingerprintMode};
use snowprune::prelude::*;

fn sensor_catalog() -> Catalog {
    let schema = Schema::new(vec![
        Field::new("day", ScalarType::Int),
        Field::new("sensor", ScalarType::Str),
        Field::new("reading", ScalarType::Int),
    ]);
    let mut b = TableBuilder::new("readings", schema)
        .target_rows_per_partition(250)
        .layout(Layout::ClusterBy(vec!["day".into()]));
    for i in 0..25_000i64 {
        b.push_row(vec![
            Value::Int(i / 100),
            Value::Str(format!("s{:03}", i % 200)),
            Value::Int((i * 7919) % 1_000_000),
        ]);
    }
    let c = Catalog::new();
    c.register(b.build());
    c
}

fn schema_of(c: &Catalog, t: &str) -> Schema {
    c.get(t).unwrap().read().schema().clone()
}

#[test]
fn facade_end_to_end_filter_query() {
    let catalog = sensor_catalog();
    let plan = PlanBuilder::scan("readings", schema_of(&catalog, "readings"))
        .filter(col("day").between(lit(100i64), lit(104i64)))
        .build();
    let exec = Executor::new(catalog, ExecConfig::default());
    let out = exec.run(&plan).unwrap();
    assert_eq!(out.rows.len(), 500);
    assert!(out.report.pruning.filter_ratio() > 0.95);
}

#[test]
fn pruning_configs_agree_on_results() {
    // Every combination of enabled techniques yields identical rows.
    let catalog = sensor_catalog();
    let plan = PlanBuilder::scan("readings", schema_of(&catalog, "readings"))
        .filter(col("sensor").like("s00%"))
        .order_by("reading", true)
        .limit(12)
        .build();
    let mut key_sets = Vec::new();
    for mask in 0..8u8 {
        let mut cfg = ExecConfig::default();
        cfg.enable_filter_pruning = mask & 1 != 0;
        cfg.enable_limit_pruning = mask & 2 != 0;
        cfg.enable_topk_pruning = mask & 4 != 0;
        let exec = Executor::new(catalog.clone(), cfg);
        let out = exec.run(&plan).unwrap();
        let keys: Vec<Value> = out.rows.rows.iter().map(|r| r[2].clone()).collect();
        key_sets.push(keys);
    }
    for ks in &key_sets[1..] {
        assert_eq!(ks, &key_sets[0]);
    }
}

#[test]
fn dml_then_query_sees_new_data_under_pruning() {
    let catalog = sensor_catalog();
    let schema = schema_of(&catalog, "readings");
    let handle = catalog.get("readings").unwrap();
    handle.write().insert_rows(vec![vec![
        Value::Int(999),
        Value::Str("s999".into()),
        Value::Int(123),
    ]]);
    let plan = PlanBuilder::scan("readings", schema)
        .filter(col("day").eq(lit(999i64)))
        .build();
    let exec = Executor::new(catalog, ExecConfig::default());
    let out = exec.run(&plan).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.io.partitions_loaded, 1, "only the new partition");
}

#[test]
fn predicate_cache_round_trip_with_dml() {
    let catalog = sensor_catalog();
    let schema = schema_of(&catalog, "readings");
    let handle = catalog.get("readings").unwrap();
    let plan = PlanBuilder::scan("readings", schema)
        .order_by("reading", true)
        .limit(5)
        .build();
    let fp = fingerprint(&plan, FingerprintMode::Exact);
    let mut cache = PredicateCache::new(8);
    // Populate from the exact contributing partitions.
    let parts = {
        let t = handle.read();
        snowprune::cache::contributing_partitions_topk(&t, None, "reading", 5, true).unwrap()
    };
    cache.insert(
        fp,
        snowprune::cache::CacheEntry {
            kind: snowprune::cache::EntryKind::TopK {
                order_column: "reading".into(),
            },
            table: "readings".into(),
            partitions: parts.clone(),
            predicate_columns: Vec::new(),
            table_version: handle.read().version(),
            appended: Vec::new(),
            shape: None,
            aux_tables: Vec::new(),
            saved_loads: 0,
        },
    );
    // Replaying the cached partitions reproduces the exact top-k multiset.
    let expected: Vec<Value> = {
        let exec = Executor::new(catalog.clone(), ExecConfig::default());
        exec.run(&plan)
            .unwrap()
            .rows
            .rows
            .iter()
            .map(|r| r[2].clone())
            .collect()
    };
    let CacheLookup::Hit(cached) = cache.lookup(fp, handle.read().version()) else {
        panic!("expected hit");
    };
    let mut replayed: Vec<i64> = Vec::new();
    {
        let t = handle.read();
        for id in cached {
            let p = t.partition(id).unwrap();
            for i in 0..p.row_count() {
                replayed.push(p.column(2).value_at(i).as_i64().unwrap());
            }
        }
    }
    replayed.sort_unstable_by(|a, b| b.cmp(a));
    replayed.truncate(5);
    let expected_ints: Vec<i64> = expected.iter().map(|v| v.as_i64().unwrap()).collect();
    assert_eq!(replayed, expected_ints);
    // INSERT with a new global maximum: cache appends the new partition, so
    // replay still finds the new top-1.
    let res = handle.write().insert_rows(vec![vec![
        Value::Int(1_000),
        Value::Str("s_new".into()),
        Value::Int(99_999_999),
    ]]);
    cache.on_dml("readings", &DmlKind::Insert, &res);
    let CacheLookup::Hit(after_insert) = cache.lookup(fp, handle.read().version()) else {
        panic!("insert must not invalidate");
    };
    assert!(after_insert.len() > parts.len());
    // DELETE invalidates the top-k entry.
    let res = handle
        .write()
        .delete_rows(|r| r[2] == Value::Int(99_999_999));
    cache.on_dml("readings", &DmlKind::Delete, &res);
    assert_eq!(cache.lookup(fp, handle.read().version()), CacheLookup::Miss);
}

#[test]
fn tpch_q6_pruning_beats_baseline_io() {
    let catalog = snowprune::workload::generate_tpch(&snowprune::workload::TpchConfig {
        scale: 0.003,
        rows_per_partition: 400,
        clustered: true,
        seed: 5,
    });
    let plan = snowprune::workload::tpch_query(6);
    let pruned = Executor::new(catalog.clone(), ExecConfig::default())
        .run(&plan)
        .unwrap();
    let baseline = Executor::new(catalog, ExecConfig::no_pruning())
        .run(&plan)
        .unwrap();
    // Same rows.
    assert_eq!(pruned.rows.len(), baseline.rows.len());
    assert!(!pruned.rows.is_empty());
    // Far less I/O (Q6 is the classic one-year shipdate range).
    assert!(pruned.io.partitions_loaded * 2 < baseline.io.partitions_loaded);
}

#[test]
fn ir_baselines_agree_with_partition_topk_on_same_data() {
    // Build a column, expose it both as posting lists and as a table;
    // top-k via BMW and via partition pruning must find the same values.
    let n = 20_000u32;
    let score = |d: u32| ((d as u64 * 2_654_435_761) % 100_000) as i64;
    let postings: Vec<snowprune::ir::Posting> = (0..n)
        .map(|d| snowprune::ir::Posting {
            doc: d,
            score: score(d) as f64,
        })
        .collect();
    let lists = vec![snowprune::ir::PostingList::new(postings, 256)];
    let (bmw, _) = snowprune::ir::block_max_wand(&lists, 10);
    let schema = Schema::new(vec![Field::new("v", ScalarType::Int)]);
    let mut b = TableBuilder::new("t", schema.clone()).target_rows_per_partition(256);
    for d in 0..n {
        b.push_row(vec![Value::Int(score(d))]);
    }
    let catalog = Catalog::new();
    catalog.register(b.build());
    let plan = PlanBuilder::scan("t", schema)
        .order_by("v", true)
        .limit(10)
        .build();
    let out = Executor::new(catalog, ExecConfig::default())
        .run(&plan)
        .unwrap();
    let engine_top: Vec<f64> = out
        .rows
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap() as f64)
        .collect();
    let bmw_top: Vec<f64> = bmw.iter().map(|d| d.score).collect();
    assert_eq!(engine_top, bmw_top);
}

#[test]
fn lake_table_scan_matches_regular_table() {
    let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
    let rows: Vec<Vec<Value>> = (0..5_000i64).map(|i| vec![Value::Int(i)]).collect();
    let lake = LakeTable::from_rows(
        "lake",
        schema.clone(),
        rows,
        1_000,
        250,
        50,
        true,
        true,
        true,
    );
    let catalog = Catalog::new();
    catalog.register(lake.to_table());
    let plan = PlanBuilder::scan("lake", schema)
        .filter(col("x").between(lit(1_000i64), lit(1_249i64)))
        .build();
    let out = Executor::new(catalog, ExecConfig::default())
        .run(&plan)
        .unwrap();
    assert_eq!(out.rows.len(), 250);
    assert_eq!(out.io.partitions_loaded, 1, "one row group's partition");
}
